//! Tabular reports in the format of Tables III and IV of the paper.

use std::fmt;
use std::time::Duration;

use crate::decompose::BiDecomposition;

/// One row of Table III / Table IV: a benchmark instance with its areas,
/// error rate and gains for the AND and `⇏` decompositions.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// Number of inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Wall-clock time spent constructing `g` and `h` for all outputs.
    pub time: Duration,
    /// Mapped area of the 2-SPP form of `f` (summed over outputs).
    pub area_f: f64,
    /// Mapped area of the 2-SPP form of `g`.
    pub area_g: f64,
    /// Error rate of the approximation, in percent.
    pub error_percent: f64,
    /// `(area_f − area_g) / area_f`, in percent.
    pub divisor_reduction_percent: f64,
    /// Mapped area of `g AND h`.
    pub area_and: f64,
    /// Gain of the AND decomposition, in percent.
    pub gain_and_percent: f64,
    /// Mapped area of `g ⇏ h`.
    pub area_nonimplication: f64,
    /// Gain of the `⇏` decomposition, in percent.
    pub gain_nonimplication_percent: f64,
}

impl BenchmarkRow {
    /// Assembles a row from the AND and `⇏` decompositions of every output of
    /// a benchmark (areas are summed across outputs, as SIS does when mapping
    /// the whole network).
    pub fn from_decompositions(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        time: Duration,
        and_results: &[BiDecomposition],
        nonimpl_results: &[BiDecomposition],
    ) -> Self {
        let area_f: f64 = and_results.iter().map(|d| d.area_f).sum();
        let area_g: f64 = and_results.iter().map(|d| d.area_g).sum();
        let area_and: f64 = and_results.iter().map(|d| d.area_bidecomposition).sum();
        let area_nonimpl: f64 = nonimpl_results.iter().map(|d| d.area_bidecomposition).sum();
        let total_minterms: f64 = and_results.len().max(1) as f64;
        let error_percent: f64 =
            and_results.iter().map(BiDecomposition::error_percent).sum::<f64>() / total_minterms;
        let pct = |num: f64| if area_f > 0.0 { num / area_f * 100.0 } else { 0.0 };
        BenchmarkRow {
            name: name.into(),
            inputs,
            outputs,
            time,
            area_f,
            area_g,
            error_percent,
            divisor_reduction_percent: pct(area_f - area_g),
            area_and,
            gain_and_percent: pct(area_f - area_and),
            area_nonimplication: area_nonimpl,
            gain_nonimplication_percent: pct(area_f - area_nonimpl),
        }
    }

    /// Header matching the columns of Tables III and IV.
    pub fn header() -> String {
        format!(
            "{:<18} {:>8} {:>9} {:>9} {:>8} {:>14} {:>9} {:>9} {:>9} {:>9}",
            "Benchmark",
            "Time(s)",
            "Area f",
            "Area g",
            "%Errors",
            "%(f-g)/f",
            "AreaAND",
            "GainAND%",
            "Area⇏",
            "Gain⇏%"
        )
    }
}

impl fmt::Display for BenchmarkRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} {:>8.2} {:>9.1} {:>9.1} {:>8.2} {:>14.2} {:>9.1} {:>9.2} {:>9.1} {:>9.2}",
            format!("{} ({}/{})", self.name, self.inputs, self.outputs),
            self.time.as_secs_f64(),
            self.area_f,
            self.area_g,
            self.error_percent,
            self.divisor_reduction_percent,
            self.area_and,
            self.gain_and_percent,
            self.area_nonimplication,
            self.gain_nonimplication_percent,
        )
    }
}

/// A complete table: a titled collection of rows with a couple of aggregate
/// statistics, printable in the layout of the paper.
#[derive(Debug, Clone, Default)]
pub struct TableReport {
    /// Table title (e.g. "Table III — error rate < 10%").
    pub title: String,
    /// The rows.
    pub rows: Vec<BenchmarkRow>,
}

impl TableReport {
    /// Creates an empty report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TableReport { title: title.into(), rows: Vec::new() }
    }

    /// Adds a row.
    pub fn push(&mut self, row: BenchmarkRow) {
        self.rows.push(row);
    }

    /// Average gain of the AND decomposition across rows.
    pub fn average_gain_and(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.gain_and_percent).sum::<f64>() / self.rows.len() as f64
    }

    /// Number of rows with a positive AND gain.
    pub fn wins_and(&self) -> usize {
        self.rows.iter().filter(|r| r.gain_and_percent > 0.0).count()
    }
}

impl fmt::Display for TableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", BenchmarkRow::header())?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        writeln!(
            f,
            "-- {} instances, {} with positive AND gain, average AND gain {:.2}%",
            self.rows.len(),
            self.wins_and(),
            self.average_gain_and()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{ApproxStrategy, DecompositionPlan};
    use crate::operator::BinaryOp;
    use boolfunc::Isf;

    fn sample_row() -> BenchmarkRow {
        let f = Isf::from_cover_str(4, &["1-10", "1-01", "-111", "-100"], &[]).unwrap();
        let and = DecompositionPlan::new(BinaryOp::And, ApproxStrategy::FullExpansion)
            .decompose(&f)
            .unwrap();
        let nonimpl =
            DecompositionPlan::new(BinaryOp::NonImplication, ApproxStrategy::FullExpansion)
                .decompose(&f)
                .unwrap();
        BenchmarkRow::from_decompositions(
            "fig2",
            4,
            1,
            Duration::from_millis(5),
            &[and],
            &[nonimpl],
        )
    }

    #[test]
    fn row_aggregates_areas_and_gains() {
        let row = sample_row();
        assert_eq!(row.name, "fig2");
        assert!(row.area_f > 0.0);
        let expected_gain = (row.area_f - row.area_and) / row.area_f * 100.0;
        assert!((row.gain_and_percent - expected_gain).abs() < 1e-9);
    }

    #[test]
    fn report_formatting_contains_all_rows_and_summary() {
        let mut report = TableReport::new("Table III (reproduction)");
        report.push(sample_row());
        let text = report.to_string();
        assert!(text.contains("Table III"));
        assert!(text.contains("fig2"));
        assert!(text.contains("average AND gain"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn aggregates_on_empty_report_are_zero() {
        let report = TableReport::new("empty");
        assert_eq!(report.average_gain_and(), 0.0);
        assert_eq!(report.wins_and(), 0);
    }

    #[test]
    fn header_and_rows_have_matching_column_counts() {
        let header = BenchmarkRow::header();
        assert!(header.contains("Area f"));
        assert!(header.contains("Gain"));
        let row = sample_row().to_string();
        // "name (i/o)" + 9 numeric columns.
        assert_eq!(row.split_whitespace().count(), 11);
        // Every numeric column parses as a number.
        for token in row.split_whitespace().skip(2) {
            assert!(token.parse::<f64>().is_ok(), "column `{token}` is not numeric");
        }
    }
}
