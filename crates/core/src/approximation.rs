//! Classification of approximations (Definitions 1–3 of the paper) and the
//! divisor side conditions of Table II.

use bdd::{Bdd, BddOps};
use boolfunc::{Isf, TruthTable};

use crate::error::BidecompError;
use crate::operator::BinaryOp;

/// Kind of approximation relating a completely specified `g` to an
/// incompletely specified `f` (Definitions 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproxKind {
    /// 0→1 (over-)approximation: some off-set minterms of `f` were moved to
    /// the on-set, so `f_on ⊆ g_on`.
    ZeroToOne,
    /// 1→0 (under-)approximation: some on-set minterms of `f` were moved to
    /// the off-set, so `g_on ⊆ f_on`.
    OneToZero,
    /// 0↔1 approximation: both kinds of complementation may occur.
    Both,
    /// `g` agrees with `f` on every care minterm (a completion of `f`).
    Exact,
}

/// Error statistics of an approximation `g` of `f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproximationStats {
    /// Number of 0→1 complementations (`g = 1` on the off-set of `f`).
    pub zero_to_one: u64,
    /// Number of 1→0 complementations (`g = 0` on the on-set of `f`).
    pub one_to_zero: u64,
    /// Total errors divided by `2^n` — the error rate of Tables III/IV.
    pub error_rate: f64,
    /// The classification of the approximation.
    pub kind: ApproxKind,
}

impl ApproximationStats {
    /// Total number of complemented output bits.
    pub fn total_errors(&self) -> u64 {
        self.zero_to_one + self.one_to_zero
    }
}

/// Classifies `g` as an approximation of `f` and counts its errors.
///
/// # Panics
///
/// Panics if the arities differ.
///
/// ```rust
/// use bidecomp::{classify_approximation, ApproxKind};
/// use boolfunc::{Cover, Isf};
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;
/// let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();
/// let stats = classify_approximation(&f, &g);
/// assert_eq!(stats.kind, ApproxKind::ZeroToOne);
/// assert_eq!(stats.zero_to_one, 1);
/// # Ok(())
/// # }
/// ```
pub fn classify_approximation(f: &Isf, g: &TruthTable) -> ApproximationStats {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch");
    let zero_to_one = (&f.off() & g).count_ones();
    let one_to_zero = (f.on() & &(!g)).count_ones();
    // The rate goes through the shared `TruthTable::error_rate` (the same
    // accounting `spp` uses): masking `g` to the care set turns its distance
    // to `f_on` into exactly `zero_to_one + one_to_zero` disagreements.
    let error_rate = (g & &f.care()).error_rate(f.on());
    let kind = match (zero_to_one, one_to_zero) {
        (0, 0) => ApproxKind::Exact,
        (_, 0) => ApproxKind::ZeroToOne,
        (0, _) => ApproxKind::OneToZero,
        _ => ApproxKind::Both,
    };
    ApproximationStats { zero_to_one, one_to_zero, error_rate, kind }
}

/// The divisor side condition of Table II for `op`, as human-readable text
/// (used in error messages and reports).
pub fn divisor_requirement(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::And => "g must be a 0→1 approximation of f (f_on ⊆ g_on)",
        BinaryOp::ConverseNonImplication => "g must be a 1→0 approximation of f' (g_on ⊆ f_off)",
        BinaryOp::NonImplication => "g must be a 0→1 approximation of f (f_on ⊆ g_on)",
        BinaryOp::Nor => "g must be a 1→0 approximation of f' (g_on ⊆ f_off)",
        BinaryOp::Or => "g must be a 1→0 approximation of f (g_on ⊆ f_on)",
        BinaryOp::Implication => "g must be a 0→1 approximation of f' (f_off ⊆ g_on)",
        BinaryOp::ConverseImplication => "g must be a 1→0 approximation of f (g_on ⊆ f_on)",
        BinaryOp::Nand => "g must be a 0→1 approximation of f' (f_off ⊆ g_on)",
        BinaryOp::Xor | BinaryOp::Xnor => "any 0↔1 approximation is allowed",
    }
}

/// Checks the divisor side condition of Table II for `op`.
///
/// Every case is evaluated word-wise on the stored on/dc tables without
/// materializing `f_off` (`g ⊆ f_off` is disjointness from `on ∪ dc`;
/// `f_off ⊆ g` is `on ∪ dc ∪ g = 1`), so the check never allocates.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn is_valid_divisor(f: &Isf, g: &TruthTable, op: BinaryOp) -> bool {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch");
    match op {
        BinaryOp::And | BinaryOp::NonImplication => f.on().is_subset_of(g),
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => {
            g.is_disjoint_from(f.on()) && g.is_disjoint_from(f.dc())
        }
        BinaryOp::Or | BinaryOp::ConverseImplication => g.is_subset_of(f.on()),
        BinaryOp::Implication | BinaryOp::Nand => f.off_is_subset_of(g),
        BinaryOp::Xor | BinaryOp::Xnor => true,
    }
}

/// [`is_valid_divisor`] on the BDD backend: the Table II side condition of
/// `op`, with `f` given as an `(on, dc)` BDD pair in `mgr`.
///
/// The subset/disjointness checks run symbolically (`diff`/`and` against the
/// constant 0), so the validation scales to arities far beyond the dense
/// representation.
pub fn is_valid_divisor_bdd<M: BddOps>(
    mgr: &mut M,
    f_on: Bdd,
    f_dc: Bdd,
    g: Bdd,
    op: BinaryOp,
) -> bool {
    match op {
        BinaryOp::And | BinaryOp::NonImplication => mgr.is_subset(f_on, g),
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => {
            // g ⊆ f_off ⇔ g disjoint from on ∪ dc.
            let on_or_dc = mgr.or(f_on, f_dc);
            mgr.is_disjoint(g, on_or_dc)
        }
        BinaryOp::Or | BinaryOp::ConverseImplication => mgr.is_subset(g, f_on),
        BinaryOp::Implication | BinaryOp::Nand => {
            // f_off ⊆ g ⇔ on ∪ dc ∪ g is the tautology.
            let on_or_dc = mgr.or(f_on, f_dc);
            let all = mgr.or(on_or_dc, g);
            mgr.is_one(all)
        }
        BinaryOp::Xor | BinaryOp::Xnor => true,
    }
}

/// Like [`is_valid_divisor`] but returning a descriptive error.
///
/// # Errors
///
/// Returns [`BidecompError::ArityMismatch`] or [`BidecompError::InvalidDivisor`].
pub fn check_divisor(f: &Isf, g: &TruthTable, op: BinaryOp) -> Result<(), BidecompError> {
    if f.num_vars() != g.num_vars() {
        return Err(BidecompError::ArityMismatch { dividend: f.num_vars(), divisor: g.num_vars() });
    }
    if is_valid_divisor(f, g, op) {
        Ok(())
    } else {
        Err(BidecompError::InvalidDivisor { op, requirement: divisor_requirement(op).to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::Cover;

    fn fig1() -> (Isf, TruthTable) {
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        (f, g)
    }

    #[test]
    fn fig1_is_a_zero_to_one_approximation_with_one_error() {
        let (f, g) = fig1();
        let stats = classify_approximation(&f, &g);
        assert_eq!(stats.kind, ApproxKind::ZeroToOne);
        assert_eq!(stats.zero_to_one, 1);
        assert_eq!(stats.one_to_zero, 0);
        assert!((stats.error_rate - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(stats.total_errors(), 1);
    }

    #[test]
    fn exact_and_under_approximations_are_classified() {
        let (f, _) = fig1();
        let exact = classify_approximation(&f, f.on());
        assert_eq!(exact.kind, ApproxKind::Exact);
        let under =
            classify_approximation(&f, &Cover::from_strs(4, &["11-1"]).unwrap().to_truth_table());
        assert_eq!(under.kind, ApproxKind::OneToZero);
        assert_eq!(under.one_to_zero, 1);
        let both =
            classify_approximation(&f, &Cover::from_strs(4, &["0---"]).unwrap().to_truth_table());
        assert_eq!(both.kind, ApproxKind::Both);
    }

    #[test]
    fn dc_minterms_never_count_as_errors() {
        // f has a dc at 0000; g = 1 there: no error.
        let f = Isf::from_cover_str(2, &["11"], &["00"]).unwrap();
        let g = Cover::from_strs(2, &["11", "00"]).unwrap().to_truth_table();
        let stats = classify_approximation(&f, &g);
        assert_eq!(stats.kind, ApproxKind::Exact);
        assert_eq!(stats.total_errors(), 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn classify_rejects_an_arity_mismatch() {
        let (f, _) = fig1();
        classify_approximation(&f, &TruthTable::zero(3));
    }

    #[test]
    fn divisor_validity_per_operator() {
        let (f, g) = fig1();
        // g over-approximates f: valid for AND and ⇏, invalid for OR/⇐.
        assert!(is_valid_divisor(&f, &g, BinaryOp::And));
        assert!(is_valid_divisor(&f, &g, BinaryOp::NonImplication));
        assert!(!is_valid_divisor(&f, &g, BinaryOp::Or));
        assert!(!is_valid_divisor(&f, &g, BinaryOp::ConverseImplication));
        // The complement of g under-approximates f̄ requirements.
        assert!(is_valid_divisor(&f, &TruthTable::zero(4), BinaryOp::Or));
        assert!(is_valid_divisor(&f, &TruthTable::one(4), BinaryOp::And));
        // XOR accepts anything.
        assert!(is_valid_divisor(&f, &g, BinaryOp::Xor));
        assert!(is_valid_divisor(&f, &TruthTable::zero(4), BinaryOp::Xnor));
    }

    #[test]
    fn check_divisor_reports_errors() {
        let (f, g) = fig1();
        assert!(check_divisor(&f, &g, BinaryOp::And).is_ok());
        let err = check_divisor(&f, &g, BinaryOp::Or).unwrap_err();
        assert!(matches!(err, BidecompError::InvalidDivisor { op: BinaryOp::Or, .. }));
        let wrong_arity = TruthTable::zero(3);
        assert!(matches!(
            check_divisor(&f, &wrong_arity, BinaryOp::Xor),
            Err(BidecompError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn requirements_text_mentions_the_sets() {
        for op in BinaryOp::all() {
            let text = divisor_requirement(op);
            assert!(!text.is_empty());
        }
    }
}
