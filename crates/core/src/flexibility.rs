//! Flexibility metrics for the quotient: how much freedom the dc-set of `h`
//! offers compared to realizing `f` directly (Section III's observation that
//! "the more accurate the approximation, the larger the dc-set of `h`").

use boolfunc::{Isf, TruthTable};

use crate::operator::BinaryOp;
use crate::quotient::quotient_sets;

/// Quantitative summary of the flexibility offered by a quotient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlexibilityReport {
    /// Number of don't-care minterms of the quotient `h`.
    pub h_dc_count: u64,
    /// Number of don't-care minterms of the original function `f`.
    pub f_dc_count: u64,
    /// Fraction of the 2^n minterms that are don't-cares of `h`.
    pub h_dc_fraction: f64,
    /// Number of minterms on which `h` is forced to 0 (the "errors to be
    /// corrected"): for the AND-like operators this equals the number of
    /// errors introduced by the approximation.
    pub h_off_count: u64,
    /// Number of minterms on which `h` is forced to 1.
    pub h_on_count: u64,
}

impl FlexibilityReport {
    /// Computes the report for `f`, `g`, `op` from the Table II sets.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn compute(f: &Isf, g: &TruthTable, op: BinaryOp) -> Self {
        let sets = quotient_sets(f, g, op);
        let total = 1u64 << f.num_vars();
        FlexibilityReport {
            h_dc_count: sets.dc.count_ones(),
            f_dc_count: f.dc().count_ones(),
            h_dc_fraction: sets.dc.count_ones() as f64 / total as f64,
            h_off_count: sets.off.count_ones(),
            h_on_count: sets.on.count_ones(),
        }
    }

    /// The extra flexibility gained over implementing `f` directly
    /// (`h_dc − f_dc` minterms).
    pub fn gained_dc(&self) -> u64 {
        self.h_dc_count.saturating_sub(self.f_dc_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::Cover;

    #[test]
    fn more_accurate_divisors_give_more_flexibility_for_and() {
        // f from Fig. 1; compare the exact divisor g = f with the one-error
        // approximation g = x1 x3 and the trivial divisor g = 1.
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let exact = FlexibilityReport::compute(&f, f.on(), BinaryOp::And);
        let one_error = FlexibilityReport::compute(
            &f,
            &Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table(),
            BinaryOp::And,
        );
        let trivial = FlexibilityReport::compute(&f, &TruthTable::one(4), BinaryOp::And);
        // Theory: h_off counts the approximation errors, so it grows as the
        // divisor gets coarser, and the dc-set shrinks accordingly.
        assert_eq!(exact.h_off_count, 0);
        assert_eq!(one_error.h_off_count, 1);
        assert_eq!(trivial.h_off_count, f.off().count_ones());
        assert!(exact.h_dc_count > one_error.h_dc_count);
        assert!(one_error.h_dc_count > trivial.h_dc_count);
    }

    #[test]
    fn quotient_dc_always_contains_the_original_dc() {
        let f = Isf::from_cover_str(3, &["11-"], &["001"]).unwrap();
        for op in BinaryOp::all() {
            // Use a trivially valid divisor for each operator.
            let g = match op {
                BinaryOp::And
                | BinaryOp::NonImplication
                | BinaryOp::Implication
                | BinaryOp::Nand => TruthTable::one(3),
                _ => TruthTable::zero(3),
            };
            let report = FlexibilityReport::compute(&f, &g, op);
            assert!(report.h_dc_count >= report.f_dc_count, "{op}: dc-set shrank");
            assert_eq!(report.gained_dc(), report.h_dc_count - report.f_dc_count);
        }
    }

    #[test]
    fn fractions_are_consistent() {
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        let report = FlexibilityReport::compute(&f, &g, BinaryOp::And);
        assert!((report.h_dc_fraction - report.h_dc_count as f64 / 16.0).abs() < 1e-12);
        assert_eq!(report.h_on_count + report.h_dc_count + report.h_off_count, 16);
    }
}
