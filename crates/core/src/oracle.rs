//! An independent SAT-based correctness oracle for the paper's claims.
//!
//! The dense word-parallel verifiers ([`crate::verify`]) and the BDD lemma
//! checks share data structures with the quotient code they validate. This
//! module is a third judge with nothing in common with either backend: each
//! claim is compiled — via a Tseitin encoding of the truth tables as ITE
//! (Shannon-expansion) DAGs — into a CNF *counterexample search* and handed
//! to the deterministic CDCL solver of the [`sat`] crate. `UNSAT` means the
//! claim holds on every minterm; `SAT` means the model is a witness minterm
//! where it fails.
//!
//! Three claims are encoded (see [`Oracle`]):
//!
//! * **`g` is a valid divisor of `f` under `op`** — the Table II side
//!   condition, as a search for a minterm violating it;
//! * **`h` completes `(f, g, op)` over the care set** — the correctness
//!   direction of Lemmas 1–5. The universal quantification over the
//!   completions of `h` is discharged by one layer of expansion: a free
//!   variable `hv` ranges over the values `h` may take at the witness
//!   minterm (`h_on → hv`, `h_off → ¬hv`), so a single existential query
//!   covers every completion;
//! * **the computed quotient is maximally flexible** — Corollaries 1–4: the
//!   on-set must equal the forced-value set and the dc-set must equal the
//!   free-value set, both re-derived inside the CNF from `g`, `op` and `f`
//!   alone.
//!
//! A rejection names the failing claim with the paper's numbering
//! ([`FailedLemma`]): Lemma 1 / Corollary 1 are the AND row of Table II (see
//! `examples/and_decomposition.rs`), Lemmas 2 and 4 cover the remaining
//! AND-like and OR-like operators, Lemma 3 is OR, Lemma 5 and Corollaries
//! 3–4 are the XOR-like pair.

use std::collections::HashMap;
use std::fmt;

use boolfunc::{Isf, TruthTable};
use sat::{Cnf, Lit, Model, SatResult, Solver};

use crate::operator::{BinaryOp, OperatorClass};

/// The claim a rejected check names, in the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailedLemma {
    /// The divisor side condition of Table II does not hold.
    SideCondition,
    /// The correctness lemma of the operator's row (Lemmas 1–5): some
    /// completion of `h` disagrees with `f` on a care minterm.
    Lemma(u8),
    /// The maximal-flexibility corollary of the operator's class
    /// (Corollaries 1–4): the quotient is not the canonical maximal one.
    Corollary(u8),
}

impl fmt::Display for FailedLemma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailedLemma::SideCondition => write!(f, "Table II side condition"),
            FailedLemma::Lemma(k) => write!(f, "Lemma {k}"),
            FailedLemma::Corollary(k) => write!(f, "Corollary {k}"),
        }
    }
}

/// A rejection from the oracle: which claim failed, for which operator, and
/// a witness minterm decoded from the SAT model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleFailure {
    /// The failing claim, named with the paper's numbering.
    pub lemma: FailedLemma,
    /// The operator under test.
    pub op: BinaryOp,
    /// A minterm on which the claim fails.
    pub minterm: u64,
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed for {}: counterexample minterm {}", self.lemma, self.op, self.minterm)
    }
}

impl std::error::Error for OracleFailure {}

/// The correctness lemma (Lemmas 1–5) covering `op`'s row of Table II.
pub fn correctness_lemma(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::And => 1,
        BinaryOp::ConverseNonImplication | BinaryOp::NonImplication | BinaryOp::Nor => 2,
        BinaryOp::Or => 3,
        BinaryOp::Implication | BinaryOp::ConverseImplication | BinaryOp::Nand => 4,
        BinaryOp::Xor | BinaryOp::Xnor => 5,
    }
}

/// The maximal-flexibility corollary (Corollaries 1–4) covering `op`.
pub fn flexibility_corollary(op: BinaryOp) -> u8 {
    match op.class() {
        OperatorClass::AndLike => 1,
        OperatorClass::OrLike => 2,
        OperatorClass::XorLike => {
            if op == BinaryOp::Xor {
                3
            } else {
                4
            }
        }
    }
}

/// Tseitin encoder of dense truth tables over a shared set of minterm
/// variables `x_0 … x_{n-1}`.
///
/// Each table is compiled bottom-up by Shannon expansion on the highest
/// remaining variable; identical sub-ranges (keyed on their packed bit
/// content and width) share one output literal, so the emitted circuit is an
/// ITE DAG, not a tree, and tables encoded against the same encoder share
/// common subfunctions.
struct TableEncoder {
    /// One variable per input, `xs[i]` ↔ bit `i` of the minterm index.
    xs: Vec<Lit>,
    /// `(width, packed bits) → output literal` across all encoded tables.
    memo: HashMap<(usize, Vec<u64>), Lit>,
}

impl TableEncoder {
    fn new(cnf: &mut Cnf, num_vars: usize) -> TableEncoder {
        let xs = (0..num_vars).map(|_| cnf.new_var()).collect();
        TableEncoder { xs, memo: HashMap::new() }
    }

    /// The output literal of `t` as a function of the shared `xs`.
    fn encode(&mut self, cnf: &mut Cnf, t: &TruthTable) -> Lit {
        assert_eq!(t.num_vars(), self.xs.len(), "arity mismatch");
        self.encode_range(cnf, t, 0, self.xs.len())
    }

    /// Encodes the sub-range `[lo, lo + 2^width)` of `t`.
    fn encode_range(&mut self, cnf: &mut Cnf, t: &TruthTable, lo: u64, width: usize) -> Lit {
        let len = 1u64 << width;
        let mut packed = vec![0u64; len.div_ceil(64) as usize];
        for i in 0..len {
            if t.get(lo + i) {
                packed[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        let ones: u32 = packed.iter().map(|w| w.count_ones()).sum();
        if ones == 0 {
            return cnf.constant(false);
        }
        if u64::from(ones) == len {
            return cnf.constant(true);
        }
        // Constant ranges were handled above, so width ≥ 1 here.
        let key = (width, packed);
        if let Some(&lit) = self.memo.get(&key) {
            return lit;
        }
        let half = len >> 1;
        let low = self.encode_range(cnf, t, lo, width - 1);
        let high = self.encode_range(cnf, t, lo + half, width - 1);
        let lit = if low == high { low } else { cnf.ite(self.xs[width - 1], high, low) };
        self.memo.insert(key, lit);
        lit
    }

    /// The witness minterm under `model`.
    fn decode(&self, model: &Model) -> u64 {
        self.xs.iter().enumerate().fold(0, |acc, (i, &x)| acc | (u64::from(model.value(x)) << i))
    }
}

/// `op` applied to two literals inside the CNF.
fn apply_op(cnf: &mut Cnf, op: BinaryOp, g: Lit, h: Lit) -> Lit {
    match op {
        BinaryOp::And => cnf.and(g, h),
        BinaryOp::ConverseNonImplication => cnf.and(!g, h),
        BinaryOp::NonImplication => cnf.and(g, !h),
        BinaryOp::Nor => !cnf.or(g, h),
        BinaryOp::Or => cnf.or(g, h),
        BinaryOp::Implication => cnf.or(!g, h),
        BinaryOp::ConverseImplication => cnf.or(g, !h),
        BinaryOp::Nand => !cnf.and(g, h),
        BinaryOp::Xor => cnf.xor(g, h),
        BinaryOp::Xnor => cnf.iff(g, h),
    }
}

/// The SAT-based correctness oracle. All methods are counterexample
/// searches: `Ok(())` means the claim holds on **every** minterm, `Err`
/// carries the failing claim's name and a witness.
pub struct Oracle;

impl Oracle {
    /// Checks the Table II side condition: `g` is a valid divisor of `f`
    /// under `op`.
    ///
    /// # Errors
    ///
    /// Returns [`FailedLemma::SideCondition`] with a witness minterm when
    /// the condition fails.
    ///
    /// # Panics
    ///
    /// Panics if the arities of `f` and `g` differ.
    pub fn check_divisor(f: &Isf, g: &TruthTable, op: BinaryOp) -> Result<(), OracleFailure> {
        assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch");
        let mut cnf = Cnf::new();
        let mut enc = TableEncoder::new(&mut cnf, f.num_vars());
        let f_on = enc.encode(&mut cnf, f.on());
        let f_dc = enc.encode(&mut cnf, f.dc());
        let g_lit = enc.encode(&mut cnf, g);
        // One violating minterm per operator family (Table II).
        let violation = match op {
            // f_on ⊆ g.
            BinaryOp::And | BinaryOp::NonImplication => cnf.and(f_on, !g_lit),
            // g ⊆ f_off, i.e. g hits neither on- nor dc-set.
            BinaryOp::ConverseNonImplication | BinaryOp::Nor => {
                let on_or_dc = cnf.or(f_on, f_dc);
                cnf.and(g_lit, on_or_dc)
            }
            // g ⊆ f_on.
            BinaryOp::Or | BinaryOp::ConverseImplication => cnf.and(g_lit, !f_on),
            // f_off ⊆ g.
            BinaryOp::Implication | BinaryOp::Nand => cnf.and_many(&[!f_on, !f_dc, !g_lit]),
            // Any g works.
            BinaryOp::Xor | BinaryOp::Xnor => cnf.constant(false),
        };
        cnf.add_clause(&[violation]);
        match Solver::from_cnf(&cnf).solve() {
            SatResult::Sat(model) => Err(OracleFailure {
                lemma: FailedLemma::SideCondition,
                op,
                minterm: enc.decode(&model),
            }),
            SatResult::Unsat => Ok(()),
        }
    }

    /// Checks the correctness direction of Lemmas 1–5: **every** completion
    /// of `h` satisfies `f = g op h` on the care set of `f`.
    ///
    /// The quantifier over completions is expanded into a single free
    /// variable `hv` constrained to the values `h` admits at the witness
    /// minterm, so one SAT query covers all completions at once.
    ///
    /// # Errors
    ///
    /// Returns the operator's [`FailedLemma::Lemma`] with a witness minterm
    /// when some completion disagrees with `f` on a care minterm.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn check_decomposition(
        f: &Isf,
        g: &TruthTable,
        h: &Isf,
        op: BinaryOp,
    ) -> Result<(), OracleFailure> {
        assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch");
        assert_eq!(f.num_vars(), h.num_vars(), "arity mismatch");
        let mut cnf = Cnf::new();
        let mut enc = TableEncoder::new(&mut cnf, f.num_vars());
        let f_on = enc.encode(&mut cnf, f.on());
        let f_dc = enc.encode(&mut cnf, f.dc());
        let g_lit = enc.encode(&mut cnf, g);
        let h_on = enc.encode(&mut cnf, h.on());
        let h_dc = enc.encode(&mut cnf, h.dc());
        // hv ranges over the values h may take at the witness minterm.
        let hv = cnf.new_var();
        cnf.imply(h_on, hv);
        let h_off = cnf.and_many(&[!h_on, !h_dc]);
        cnf.imply(h_off, !hv);
        let result = apply_op(&mut cnf, op, g_lit, hv);
        let mismatch = cnf.xor(result, f_on);
        cnf.add_clause(&[!f_dc]); // a care minterm …
        cnf.add_clause(&[mismatch]); // … where g op hv ≠ f.
        match Solver::from_cnf(&cnf).solve() {
            SatResult::Sat(model) => Err(OracleFailure {
                lemma: FailedLemma::Lemma(correctness_lemma(op)),
                op,
                minterm: enc.decode(&model),
            }),
            SatResult::Unsat => Ok(()),
        }
    }

    /// Checks Corollaries 1–4: `h` is exactly the maximally flexible
    /// quotient — its on-set is the set of care minterms where only `h = 1`
    /// reproduces `f`, and its dc-set is the set of minterms where both
    /// values do (or which are don't-cares of `f`).
    ///
    /// # Errors
    ///
    /// Returns the operator's [`FailedLemma::Corollary`] with a witness
    /// minterm where `h` deviates from the canonical quotient, or
    /// [`FailedLemma::SideCondition`] if the witness shows `g` admits no
    /// value of `h` at all (an invalid divisor vacuously violates
    /// maximality, matching the dense and BDD verifiers).
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn check_maximal_flexibility(
        f: &Isf,
        g: &TruthTable,
        h: &Isf,
        op: BinaryOp,
    ) -> Result<(), OracleFailure> {
        assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch");
        assert_eq!(f.num_vars(), h.num_vars(), "arity mismatch");
        let mut cnf = Cnf::new();
        let mut enc = TableEncoder::new(&mut cnf, f.num_vars());
        let f_on = enc.encode(&mut cnf, f.on());
        let f_dc = enc.encode(&mut cnf, f.dc());
        let g_lit = enc.encode(&mut cnf, g);
        let h_on = enc.encode(&mut cnf, h.on());
        let h_dc = enc.encode(&mut cnf, h.dc());
        let zero = cnf.constant(false);
        let one = cnf.constant(true);
        let with0 = apply_op(&mut cnf, op, g_lit, zero);
        let with1 = apply_op(&mut cnf, op, g_lit, one);
        let ok0 = cnf.iff(with0, f_on);
        let ok1 = cnf.iff(with1, f_on);
        let care = !f_dc;
        // The canonical quotient, re-derived from g, op and f alone.
        let invalid = cnf.and_many(&[care, !ok0, !ok1]);
        let forced_true = cnf.and_many(&[care, !ok0, ok1]);
        let both_ok = cnf.and(ok0, ok1);
        let free = cnf.or(!care, both_ok);
        let wrong_on = cnf.xor(h_on, forced_true);
        let wrong_dc = cnf.xor(h_dc, free);
        let violation = cnf.or_many(&[invalid, wrong_on, wrong_dc]);
        cnf.add_clause(&[violation]);
        match Solver::from_cnf(&cnf).solve() {
            SatResult::Sat(model) => {
                let minterm = enc.decode(&model);
                // Name the claim: an invalid-divisor witness is a side
                // condition failure, anything else is the class corollary.
                // (Re-evaluated densely at the single witness minterm.)
                let gw = u64::from(g.get(minterm));
                let fw = u64::from(f.on().get(minterm));
                let is_care = !f.dc().get(minterm);
                let ok0 = op.apply_words(gw, 0) & 1 == fw;
                let ok1 = op.apply_words(gw, u64::MAX) & 1 == fw;
                let lemma = if is_care && !ok0 && !ok1 {
                    FailedLemma::SideCondition
                } else {
                    FailedLemma::Corollary(flexibility_corollary(op))
                };
                Err(OracleFailure { lemma, op, minterm })
            }
            SatResult::Unsat => Ok(()),
        }
    }

    /// Runs all three checks in order (side condition, correctness,
    /// maximality), returning the first rejection.
    ///
    /// # Errors
    ///
    /// Propagates the first [`OracleFailure`].
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn check(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> Result<(), OracleFailure> {
        Oracle::check_divisor(f, g, op)?;
        Oracle::check_decomposition(f, g, h, op)?;
        Oracle::check_maximal_flexibility(f, g, h, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quotient::full_quotient;
    use benchmarks::DetRng;
    use boolfunc::Cover;

    fn fig1() -> (Isf, TruthTable) {
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        (f, g)
    }

    #[test]
    fn encoder_round_trips_random_tables() {
        let mut rng = DetRng::seed_from_u64(0x0E0C);
        for n in 1..=6 {
            for _ in 0..4 {
                let t = TruthTable::from_words(n, || rng.next_u64());
                let mut cnf = Cnf::new();
                let mut enc = TableEncoder::new(&mut cnf, n);
                let lit = enc.encode(&mut cnf, &t);
                for m in 0..(1u64 << n) {
                    let mut pinned = cnf.clone();
                    for (i, &x) in enc.xs.iter().enumerate() {
                        pinned.add_clause(&[if m >> i & 1 == 1 { x } else { !x }]);
                    }
                    pinned.add_clause(&[if t.get(m) { lit } else { !lit }]);
                    assert!(
                        Solver::from_cnf(&pinned).solve().is_sat(),
                        "n={n} m={m}: encoded table must agree with t.get"
                    );
                    let mut contra = cnf.clone();
                    for (i, &x) in enc.xs.iter().enumerate() {
                        contra.add_clause(&[if m >> i & 1 == 1 { x } else { !x }]);
                    }
                    contra.add_clause(&[if t.get(m) { !lit } else { lit }]);
                    assert!(
                        !Solver::from_cnf(&contra).solve().is_sat(),
                        "n={n} m={m}: encoded table must be forced"
                    );
                }
            }
        }
    }

    #[test]
    fn fig1_passes_all_three_checks() {
        let (f, g) = fig1();
        let h = full_quotient(&f, &g, BinaryOp::And).unwrap();
        Oracle::check(&f, &g, &h, BinaryOp::And).unwrap();
    }

    #[test]
    fn invalid_divisor_names_the_side_condition() {
        let (f, _) = fig1();
        let g = TruthTable::zero(4); // f_on ⊄ g: invalid for AND.
        let err = Oracle::check_divisor(&f, &g, BinaryOp::And).unwrap_err();
        assert_eq!(err.lemma, FailedLemma::SideCondition);
        assert!(f.on().get(err.minterm), "witness must be an uncovered on-set minterm");
        let expected = format!(
            "Table II side condition failed for {}: counterexample minterm {}",
            BinaryOp::And,
            err.minterm
        );
        assert_eq!(err.to_string(), expected);
    }

    #[test]
    fn lemma_and_corollary_numbers_follow_the_paper() {
        assert_eq!(correctness_lemma(BinaryOp::And), 1);
        assert_eq!(correctness_lemma(BinaryOp::Nor), 2);
        assert_eq!(correctness_lemma(BinaryOp::Or), 3);
        assert_eq!(correctness_lemma(BinaryOp::Nand), 4);
        assert_eq!(correctness_lemma(BinaryOp::Xor), 5);
        assert_eq!(flexibility_corollary(BinaryOp::NonImplication), 1);
        assert_eq!(flexibility_corollary(BinaryOp::Implication), 2);
        assert_eq!(flexibility_corollary(BinaryOp::Xor), 3);
        assert_eq!(flexibility_corollary(BinaryOp::Xnor), 4);
    }

    #[test]
    fn every_operator_accepts_its_own_full_quotient() {
        let mut rng = DetRng::seed_from_u64(0x0AC1E);
        let x0 = TruthTable::variable(4, 0);
        let on = &TruthTable::from_words(4, || rng.next_u64()) & &(!&x0);
        let dc = &TruthTable::from_words(4, || rng.next_u64()) & &x0;
        let f = Isf::new(on, dc).unwrap();
        for op in BinaryOp::all() {
            let g = crate::engine::seeded_divisor(&f, op, 0xFACE);
            let h = full_quotient(&f, &g, op).unwrap_or_else(|e| panic!("{op}: {e}"));
            Oracle::check(&f, &g, &h, op).unwrap_or_else(|e| panic!("{op}: {e}"));
        }
    }
}
