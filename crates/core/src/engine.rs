//! The batch decomposition engine: the full 10-operator × instance × output
//! sweep of a [`benchmarks::Suite`], fanned across a fixed-size worker pool
//! of `std` threads with deterministic, seed-stable results.
//!
//! Each *job* is one `(instance, output, operator)` triple. The worker
//! derives a seed-stable valid divisor for the operator's Table II side
//! condition ([`seeded_divisor`]), computes the full quotient, and checks
//! both Lemmas 1–5 ([`crate::verify_decomposition`]) and Corollaries 1–4
//! ([`crate::verify_maximal_flexibility`]). Results land in a pre-sized slot
//! per job, so the report is bit-identical regardless of thread count or
//! scheduling.
//!
//! Three [`Backend`]s execute the jobs:
//!
//! * [`Backend::Dense`] — the allocation-free word-parallel path
//!   ([`QuotientScratch`] plus the `_sets` verifiers) on packed truth
//!   tables; unbeatable while `2^n` bits fit comfortably in cache.
//! * [`Backend::Bdd`] — the symbolic path ([`crate::full_quotient_bdd`] plus
//!   the `_bdd` verifiers) with one reused [`BddManager`] per worker. It
//!   additionally sweeps the suite's *symbolic* instances
//!   ([`benchmarks::SymbolicInstance`], 24–40 inputs), which the dense
//!   backend cannot represent at all. On dense instances its divisors are
//!   bit-identical to the dense backend's (same noise words, same algebra),
//!   so the two backends produce the same report minterm counts.
//! * [`Backend::BddShared`] — the same symbolic path on one
//!   [`SharedManager`] shared by every worker: each worker runs a
//!   [`WorkerCtx`] (private operation caches) over the single sharded,
//!   globally hash-consed node store, so structure common across jobs is
//!   built exactly once. Semantic results are bit-identical to
//!   [`Backend::Bdd`] and independent of thread count; per-job `bdd_nodes`
//!   is reported as 0 (nodes are pooled) and the store-wide total lands in
//!   [`SweepReport::shared_nodes`].
//!
//! Besides the quotient sweep, the module hosts a second sweep kind:
//! [`sweep_synthesis`] fans the recursive bi-decomposition synthesizer
//! ([`crate::recursive`]) over a suite's dense instances on the same
//! slot-indexed pool, reporting gate counts, mapped areas and gains instead
//! of minterm statistics.
//!
//! ```rust
//! use benchmarks::Suite;
//! use bidecomp::engine::{sweep, Backend, EngineConfig};
//!
//! let report = sweep(&Suite::smoke(), &EngineConfig::default());
//! assert_eq!(report.jobs.len(), report.total_jobs());
//! assert!(report.all_verified());
//! // Ten per-operator aggregates, in Table I order.
//! assert_eq!(report.operators.len(), 10);
//!
//! // The same sweep, executed symbolically.
//! let config = EngineConfig { backend: Backend::Bdd, ..EngineConfig::default() };
//! let symbolic = sweep(&Suite::smoke(), &config);
//! assert!(symbolic.all_verified());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bdd::{force_order, Bdd, BddManager, BddOps, SharedManager, SiftConfig, WorkerCtx};
use benchmarks::{DetRng, Suite, SymbolicFunction};
use boolfunc::{Isf, TruthTable};

use crate::approximation::{is_valid_divisor, is_valid_divisor_bdd};
use crate::cache::SharedQuotientCache;
use crate::decompose::ApproxStrategy;
use crate::operator::BinaryOp;
use crate::oracle::Oracle;
use crate::quotient::{full_quotient_bdd, quotient_off_bdd, QuotientScratch, QuotientSets};
use crate::recursive::{RecursiveConfig, RecursiveSynthesizer};
use crate::verify::{
    verify_decomposition_bdd, verify_decomposition_sets, verify_maximal_flexibility_bdd,
    verify_maximal_flexibility_sets,
};

/// Which representation executes the sweep's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Packed truth tables (word-parallel, allocation-free). The default.
    #[default]
    Dense,
    /// BDDs in a per-worker manager; also sweeps the suite's symbolic
    /// instances, which have no dense representation.
    Bdd,
    /// BDDs in **one** [`SharedManager`] serving every worker through a
    /// per-worker [`WorkerCtx`]. Sweeps the same job set as [`Backend::Bdd`]
    /// and produces the same semantic results (minterm counts, verdicts) —
    /// but nodes common across jobs are built once, globally hash-consed,
    /// instead of once per job. Dynamic reordering is ignored (the shared
    /// store's quiescence rule: no sifting while workers hold handles).
    BddShared,
}

impl Backend {
    /// Stable lowercase name (used in reports and artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::Bdd => "bdd",
            Backend::BddShared => "bdd-shared",
        }
    }
}

/// Configuration of a batch sweep.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Operators to sweep, in report order (defaults to all ten of Table I).
    pub ops: Vec<BinaryOp>,
    /// Skip dense instances with more than this many inputs. Symbolic
    /// instances are curated for the BDD backend and are never filtered.
    pub max_inputs: usize,
    /// Use at most this many outputs per instance.
    pub max_outputs: usize,
    /// Base seed for the per-job divisor derivation.
    pub seed: u64,
    /// The representation executing the jobs.
    pub backend: Backend,
    /// Optional shared memoization of full-quotient results, consulted by
    /// the dense backend before each Table II computation (the BDD backend
    /// keeps its own per-manager memo tables and ignores this). Because the
    /// full quotient is unique, the report is bit-identical with or without
    /// a cache — the flag only changes how much work is skipped when the
    /// same `(f, g, op)` subproblem (up to the cache's normalization)
    /// recurs across jobs.
    pub quotient_cache: Option<SharedQuotientCache>,
    /// Opt-in self-audit: replay a sampled fraction of dense jobs through
    /// the SAT [`Oracle`] and record whether its
    /// verdicts agree with the dense verifiers (see [`OracleConfig`]).
    /// `None` (the default) runs no oracle; the BDD backend never audits
    /// (the oracle needs the dense tables).
    pub oracle: Option<OracleConfig>,
    /// Opt-in dynamic variable ordering for the BDD backend (the dense
    /// backend ignores it). `None` — the default — keeps the fixed identity
    /// order, which is what the bit-identical cross-backend property tests
    /// pin. With a [`ReorderConfig`], cover-described symbolic jobs seed a
    /// FORCE static order and every symbolic job sifts on table-growth
    /// triggers; all of it is deterministic, so reports stay independent of
    /// thread count — only `bdd_nodes` changes relative to a non-reordered
    /// run (semantic minterm counts and verification verdicts cannot).
    pub reorder: Option<ReorderConfig>,
    /// Optional observability registry. When set, each worker accumulates a
    /// plain-field recorder (phase timers, a job-latency histogram, BDD
    /// manager counters) and merges it into the registry once, when the
    /// worker retires — no locks or atomics on the job hot path, and phase
    /// boundaries are clocked on a sampled subset of jobs (see
    /// [`PHASE_SAMPLE`]) because quotient jobs are sub-microsecond and a
    /// per-job clock read would dominate them. Metrics never influence
    /// results: every [`JobResult::semantic`] fingerprint is bit-identical
    /// with or without a registry attached, at any thread count.
    pub obs: Option<Arc<obs::Registry>>,
}

/// Dynamic-variable-ordering policy of the BDD backend
/// ([`EngineConfig::reorder`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderConfig {
    /// Seed each cover-described job's manager with a FORCE static order
    /// over its on/dc/noise covers before any node is built.
    pub static_seed: bool,
    /// Live-node threshold arming the automatic sift trigger
    /// ([`bdd::SiftConfig::auto_threshold`]); 0 disables sifting and leaves
    /// only static seeding.
    pub sift_threshold: usize,
    /// Growth factor a sifted variable may temporarily inflate the diagram
    /// by ([`bdd::SiftConfig::max_growth`]).
    pub max_growth: f64,
    /// Live-node budget aborting a sift pass (0 = unbounded).
    pub node_budget: usize,
}

impl Default for ReorderConfig {
    /// FORCE seeding on, sifting armed at 2048 live nodes, 20% growth
    /// headroom, no pass budget — tuned on `Suite::large()` where it cuts
    /// peak node count without costing wall time.
    fn default() -> Self {
        ReorderConfig { static_seed: true, sift_threshold: 2048, max_growth: 1.2, node_budget: 0 }
    }
}

/// Configuration of the sampled SAT-oracle self-audit of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// Audit one in `sample_every` jobs (`1` audits every job, `0` is
    /// treated as `1`). Selection is a pure function of the job seed, so
    /// which jobs are audited is independent of thread count and
    /// scheduling.
    pub sample_every: u64,
}

impl Default for OracleConfig {
    /// Audit one job in 16.
    fn default() -> Self {
        OracleConfig { sample_every: 16 }
    }
}

impl OracleConfig {
    /// `true` if the job with divisor seed `job_seed` is audited.
    pub fn samples(&self, job_seed: u64) -> bool {
        self.sample_every <= 1 || job_seed.is_multiple_of(self.sample_every)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            ops: BinaryOp::all().to_vec(),
            max_inputs: 12,
            max_outputs: 6,
            seed: 0xB1DE_C04D,
            backend: Backend::Dense,
            quotient_cache: None,
            oracle: None,
            reorder: None,
            obs: None,
        }
    }
}

impl EngineConfig {
    /// The worker-pool size actually used: `threads`, or the machine's
    /// available parallelism when `threads` is 0.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// The divisor seed of job `(instance_index, output_index, op_index)`.
    ///
    /// Exposed so tests (and external tools) can regenerate the exact divisor
    /// a sweep used. The mapping depends only on the base seed and the three
    /// indices, never on thread count or scheduling.
    pub fn job_seed(&self, instance: usize, output: usize, op_index: usize) -> u64 {
        let mixed = self.seed
            ^ (instance as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (output as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ (op_index as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
        DetRng::seed_from_u64(mixed).next_u64()
    }
}

/// Derives a deterministic divisor satisfying the Table II side condition of
/// `op`, using `seed` to choose which minterms move.
///
/// The divisor is built word-parallel from a [`DetRng`] noise stream:
///
/// * `AND`/`⇏` need `f_on ⊆ g`: `g = f_on ∪ (noise ∩ f_off)`;
/// * `OR`/`⇐` need `g ⊆ f_on`: `g = f_on ∩ noise`;
/// * `⇍`/`NOR` need `g ⊆ f_off`: `g = f_off ∩ noise`;
/// * `⇒`/`NAND` need `f_off ⊆ g`: `g = f_off ∪ (noise ∩ f_on)`;
/// * `XOR`/`XNOR` accept anything: `g = f_on ⊕ noise`.
pub fn seeded_divisor(f: &Isf, op: BinaryOp, seed: u64) -> TruthTable {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut g = TruthTable::from_words(f.num_vars(), || rng.next_u64());
    match op {
        BinaryOp::And | BinaryOp::NonImplication => {
            g.difference_assign(f.dc());
            g.difference_assign(f.on()); // noise ∩ f_off
            g |= f.on();
        }
        BinaryOp::Or | BinaryOp::ConverseImplication => g &= f.on(),
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => {
            g.difference_assign(f.dc());
            g.difference_assign(f.on());
        }
        BinaryOp::Implication | BinaryOp::Nand => {
            // g = f_off ∪ (noise ∩ f_on) without materializing f_off, via
            // De Morgan: !((f_on \ noise) ∪ f_dc) = f_off ∪ (noise ∩ !f_dc)
            // = f_off ∪ (noise ∩ f_on).
            g.not_assign();
            g &= f.on(); // f_on \ noise
            g |= f.dc();
            g.not_assign();
        }
        BinaryOp::Xor | BinaryOp::Xnor => g ^= f.on(),
    }
    debug_assert!(is_valid_divisor(f, &g, op), "seeded divisor violates the {op} side condition");
    g
}

/// The symbolic counterpart of [`seeded_divisor`]: derives a divisor
/// satisfying the Table II side condition of `op` from an arbitrary `noise`
/// function, using the *same set algebra* as the dense version — feed it the
/// BDD of the same noise words and it produces the BDD of the same divisor.
///
/// At large arities the engine feeds it a seeded
/// [`benchmarks::symbolic::noise_cover`] instead, keeping the divisor's BDD
/// small while the side condition still holds by construction.
pub fn seeded_divisor_bdd<M: BddOps>(
    mgr: &mut M,
    f_on: Bdd,
    f_dc: Bdd,
    noise: Bdd,
    op: BinaryOp,
) -> Bdd {
    match op {
        BinaryOp::And | BinaryOp::NonImplication => {
            // f_on ∪ (noise ∩ f_off)
            let a = mgr.diff(noise, f_dc);
            let b = mgr.diff(a, f_on);
            mgr.or(b, f_on)
        }
        BinaryOp::Or | BinaryOp::ConverseImplication => mgr.and(noise, f_on),
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => {
            // noise ∩ f_off
            let a = mgr.diff(noise, f_dc);
            mgr.diff(a, f_on)
        }
        BinaryOp::Implication | BinaryOp::Nand => {
            // f_off ∪ (noise ∩ f_on) = ¬((f_on \ noise) ∪ f_dc)
            let a = mgr.diff(f_on, noise);
            let b = mgr.or(a, f_dc);
            mgr.not(b)
        }
        BinaryOp::Xor | BinaryOp::Xnor => mgr.xor(noise, f_on),
    }
}

/// The outcome of one `(instance, output, operator)` job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Benchmark instance name.
    pub instance: String,
    /// Output index within the instance.
    pub output: usize,
    /// Operator applied.
    pub op: BinaryOp,
    /// Arity of the function.
    pub num_vars: usize,
    /// `|h_on|` of the computed quotient.
    pub on_minterms: u64,
    /// `|h_dc|` of the computed quotient (the flexibility the paper maximizes).
    pub dc_minterms: u64,
    /// `|h_off|` of the computed quotient.
    pub off_minterms: u64,
    /// Number of minterms on which the seeded divisor differs from `f` on the
    /// care set (the approximation error driving the quotient's off-set).
    pub divisor_errors: u64,
    /// Lemmas 1–5: `f = g op h` for every completion of `h`.
    pub verified: bool,
    /// Corollaries 1–4: `h` has the smallest on-set and largest dc-set.
    pub maximal: bool,
    /// Nodes in the job's BDD manager after the quotient and both
    /// verifications (0 on the dense backend). Deterministic: each job runs
    /// in a freshly cleared manager.
    pub bdd_nodes: u64,
    /// `true` if the opt-in SAT oracle replayed this job
    /// ([`EngineConfig::oracle`]; dense backend only).
    pub oracle_audited: bool,
    /// `false` iff the oracle audited this job and one of its verdicts
    /// (divisor validity, Lemmas 1–5, Corollaries 1–4) disagreed with the
    /// dense backend. Always `true` for unaudited jobs.
    pub oracle_agreed: bool,
    /// Wall time of the job in nanoseconds (divisor + quotient + both
    /// verifications). Excluded from determinism comparisons.
    pub nanos: u64,
}

impl JobResult {
    /// The scheduling-independent portion of the result (everything except
    /// the wall time), for bit-identical comparisons across thread counts.
    #[allow(clippy::type_complexity)]
    pub fn semantic(
        &self,
    ) -> (&str, usize, BinaryOp, usize, u64, u64, u64, u64, bool, bool, u64, (bool, bool)) {
        (
            &self.instance,
            self.output,
            self.op,
            self.num_vars,
            self.on_minterms,
            self.dc_minterms,
            self.off_minterms,
            self.divisor_errors,
            self.verified,
            self.maximal,
            self.bdd_nodes,
            (self.oracle_audited, self.oracle_agreed),
        )
    }
}

/// Per-operator aggregate over all jobs of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorStats {
    /// The operator.
    pub op: BinaryOp,
    /// Number of jobs run with this operator.
    pub jobs: u64,
    /// Jobs whose decomposition verified (Lemmas 1–5).
    pub verified: u64,
    /// Jobs whose quotient was maximally flexible (Corollaries 1–4).
    pub maximal: u64,
    /// Total `|h_on|` across jobs.
    pub on_minterms: u64,
    /// Total `|h_dc|` across jobs.
    pub dc_minterms: u64,
    /// Total divisor errors across jobs.
    pub divisor_errors: u64,
    /// Total job wall time in nanoseconds.
    pub nanos: u64,
}

/// The machine-readable result of a sweep: per-job results in deterministic
/// job order plus per-operator aggregates in the order of
/// [`EngineConfig::ops`].
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Name of the suite that was swept.
    pub suite: String,
    /// Backend that executed the jobs.
    pub backend: Backend,
    /// Worker threads used.
    pub threads: usize,
    /// One result per job, ordered by `(instance, output, operator)` index —
    /// independent of scheduling.
    pub jobs: Vec<JobResult>,
    /// Aggregates per operator.
    pub operators: Vec<OperatorStats>,
    /// End-to-end wall time of the sweep in microseconds.
    pub wall_micros: u64,
    /// Total nodes of the one shared store after the sweep
    /// ([`Backend::BddShared`] only; 0 otherwise). The store is append-only
    /// while shared, so this is also its peak — report it once, never summed
    /// per worker.
    pub shared_nodes: u64,
    /// Log-bucketed histogram of per-job wall times in microseconds, built
    /// from the jobs' `nanos` after the pool joins (so it costs nothing on
    /// the hot path and is present whether or not [`EngineConfig::obs`] is
    /// set). Wall times are scheduling-dependent; this field is observability
    /// data, never part of any semantic fingerprint.
    pub job_latency: obs::HistogramSnapshot,
}

impl SweepReport {
    /// Total number of jobs.
    pub fn total_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if every job verified and was maximally flexible.
    pub fn all_verified(&self) -> bool {
        self.jobs.iter().all(|j| j.verified && j.maximal)
    }

    /// Number of jobs the opt-in SAT oracle audited
    /// ([`EngineConfig::oracle`]).
    pub fn oracle_audited(&self) -> u64 {
        self.jobs.iter().filter(|j| j.oracle_audited).count() as u64
    }

    /// Number of audited jobs on which the oracle disagreed with the dense
    /// verdicts. Anything other than 0 is a cross-backend bug.
    pub fn oracle_disagreements(&self) -> u64 {
        self.jobs.iter().filter(|j| !j.oracle_agreed).count() as u64
    }
}

/// One `(instance, output, op)` triple by index. `symbolic` selects which of
/// the suite's two instance lists `instance` indexes into.
#[derive(Debug, Clone, Copy)]
struct JobSpec {
    instance: usize,
    output: usize,
    op_index: usize,
    symbolic: bool,
}

/// Per-worker reusable buffers, rebuilt only when the arity changes (jobs are
/// enumerated instance-major, so this is rare). The dense buffers exist only
/// for arities the dense representation supports; the BDD manager is created
/// on first symbolic use and then recycled through [`BddManager::clear`].
struct WorkerScratch {
    num_vars: usize,
    scratch: QuotientScratch,
    sets: QuotientSets,
    mgr: Option<BddManager>,
    /// The worker's view of the one shared store ([`Backend::BddShared`]
    /// only): a clone of the store handle plus worker-private caches.
    ctx: Option<WorkerCtx>,
    /// Per-worker observability recorder ([`EngineConfig::obs`] only):
    /// plain-field accumulation per job, merged into the shared registry
    /// when the worker retires (on drop).
    rec: Option<EngineRecorder>,
}

/// Plain-field per-worker metrics, merged into the [`obs::Registry`] exactly
/// once — from [`Drop`], which the pool reaches both when a worker finishes
/// its jobs and when a panic rebuilds the worker state (partial counts from
/// before the panicked job are still merged; the panicked job itself records
/// nothing).
struct EngineRecorder {
    registry: Arc<obs::Registry>,
    /// Prefix for the accumulated BDD manager counters (`bdd.mgr` for
    /// per-worker managers, `bdd.worker` for shared-store contexts); `None`
    /// on the dense backend, which has no manager.
    bdd_prefix: Option<&'static str>,
    jobs: u64,
    /// Jobs whose phase boundaries were actually clocked (the sampled
    /// subset); divide the phase nanos by this, not by `jobs`.
    clocked_jobs: u64,
    /// Drives the phase-clocking sample: job `tick` is clocked iff
    /// `tick % PHASE_SAMPLE == 0`, so each worker's first job always is.
    tick: u64,
    quotient_nanos: u64,
    verify_nanos: u64,
    oracle_nanos: u64,
    latency: obs::LocalHistogram,
    bdd: bdd::CacheStats,
}

/// One job in this many (per worker, the first always) has its phase
/// boundaries clocked when a registry is attached ([`EngineConfig::obs`]).
/// Dense quotient jobs are sub-microsecond, so the two extra `Instant::now`
/// calls a phase split needs would cost tens of percent if taken on every
/// job; sampling keeps the whole observability layer inside the overhead
/// budget the `obs_overhead` benchmark gates. Job counts, the job-latency
/// histogram and the BDD work counters are exact — only the
/// `engine.{quotient,verify,oracle}_nanos` phase timers are estimates over
/// the `engine.clocked_jobs` sample.
pub const PHASE_SAMPLE: u64 = 16;

impl EngineRecorder {
    fn new(registry: Arc<obs::Registry>, bdd_prefix: Option<&'static str>) -> Self {
        EngineRecorder {
            registry,
            bdd_prefix,
            jobs: 0,
            clocked_jobs: 0,
            tick: 0,
            quotient_nanos: 0,
            verify_nanos: 0,
            oracle_nanos: 0,
            latency: obs::LocalHistogram::new(),
            bdd: bdd::CacheStats::default(),
        }
    }

    /// Whether the job about to run has its phase boundaries clocked
    /// (see [`PHASE_SAMPLE`]); call exactly once per job.
    fn clock_phases(&mut self) -> bool {
        let clocked = self.tick.is_multiple_of(PHASE_SAMPLE);
        self.tick += 1;
        clocked
    }

    /// Accounts one finished job: total wall always, plus — for clocked
    /// jobs — its phase split (divisor+quotient, verification+counting,
    /// optional oracle audit).
    fn record_job(&mut self, nanos: u64, phases: Option<(u64, u64, u64)>) {
        self.jobs += 1;
        self.latency.record(nanos / 1_000);
        if let Some((quotient, verify, oracle)) = phases {
            self.clocked_jobs += 1;
            self.quotient_nanos += quotient;
            self.verify_nanos += verify;
            self.oracle_nanos += oracle;
        }
    }
}

impl Drop for EngineRecorder {
    fn drop(&mut self) {
        let registry = &self.registry;
        registry.add("engine.jobs", self.jobs);
        registry.add("engine.clocked_jobs", self.clocked_jobs);
        registry.add("engine.quotient_nanos", self.quotient_nanos);
        registry.add("engine.verify_nanos", self.verify_nanos);
        registry.add("engine.oracle_nanos", self.oracle_nanos);
        self.latency.merge_into(&registry.histogram("engine.job_micros"));
        if let Some(prefix) = self.bdd_prefix {
            self.bdd.merge_into(registry, prefix);
        }
    }
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            num_vars: 0,
            scratch: QuotientScratch::new(0),
            sets: QuotientSets::zero(0),
            mgr: None,
            ctx: None,
            rec: None,
        }
    }

    /// A scratch whose worker context (if `store` is given) shares the one
    /// sweep-wide node store, recording metrics into `config.obs` if set.
    fn for_sweep(config: &EngineConfig, store: Option<&Arc<SharedManager>>) -> Self {
        let bdd_prefix = match config.backend {
            Backend::Dense => None,
            Backend::Bdd => Some("bdd.mgr"),
            Backend::BddShared => Some("bdd.worker"),
        };
        WorkerScratch {
            ctx: store.map(|s| WorkerCtx::new(Arc::clone(s))),
            rec: config.obs.as_ref().map(|r| EngineRecorder::new(Arc::clone(r), bdd_prefix)),
            ..Self::new()
        }
    }

    fn ensure(&mut self, num_vars: usize) {
        if self.num_vars != num_vars {
            self.num_vars = num_vars;
            self.scratch = QuotientScratch::new(num_vars);
            self.sets = QuotientSets::zero(num_vars);
        }
    }

    /// A cleared manager of arity `num_vars`, reusing the previous job's
    /// allocation whenever the arity matches.
    fn manager_for(&mut self, num_vars: usize) -> &mut BddManager {
        match &mut self.mgr {
            Some(mgr) if mgr.num_vars() == num_vars => {
                mgr.clear();
            }
            slot => *slot = Some(BddManager::new(num_vars)),
        }
        self.mgr.as_mut().expect("manager just ensured")
    }
}

/// Runs the full batch sweep of `suite` under `config` and aggregates the
/// report. See the [module documentation](self) for the execution model.
///
/// # Panics
///
/// Panics if `config.ops` is empty.
pub fn sweep(suite: &Suite, config: &EngineConfig) -> SweepReport {
    assert!(!config.ops.is_empty(), "the engine needs at least one operator");
    let instances = suite.instances();
    let mut specs = Vec::new();
    let mut max_arity = 0;
    for (instance, inst) in instances.iter().enumerate() {
        if inst.num_inputs() > config.max_inputs {
            continue;
        }
        max_arity = max_arity.max(inst.num_inputs());
        for output in 0..inst.num_outputs().min(config.max_outputs) {
            for op_index in 0..config.ops.len() {
                specs.push(JobSpec { instance, output, op_index, symbolic: false });
            }
        }
    }
    // Symbolic instances have no dense representation: only the BDD backends
    // can execute them.
    if matches!(config.backend, Backend::Bdd | Backend::BddShared) {
        for (instance, inst) in suite.symbolic_instances().iter().enumerate() {
            max_arity = max_arity.max(inst.num_inputs());
            for output in 0..inst.num_outputs().min(config.max_outputs) {
                for op_index in 0..config.ops.len() {
                    specs.push(JobSpec { instance, output, op_index, symbolic: true });
                }
            }
        }
    }

    // One store for every worker and every job: sized at the widest enumerated
    // arity, narrower jobs run over its variable prefix (counts are shifted
    // back down by the unused variables when reported).
    let store = match config.backend {
        // The store's shard contention counters live directly in the sweep's
        // registry when one is attached — no mirroring step after the pool.
        Backend::BddShared => Some(Arc::new(match &config.obs {
            Some(registry) => SharedManager::with_registry(max_arity, registry),
            None => SharedManager::new(max_arity),
        })),
        _ => None,
    };

    let threads = config.effective_threads().clamp(1, specs.len().max(1));
    let start = Instant::now();
    let jobs = run_pool(
        &specs,
        threads,
        || WorkerScratch::for_sweep(config, store.as_ref()),
        |buffers, spec| run_job(suite, config, *spec, buffers),
    );
    let wall_micros = start.elapsed().as_micros() as u64;

    let shared_nodes = store.map_or(0, |s| s.num_nodes() as u64);
    // Post-pool bookkeeping: the job-latency histogram is rebuilt from the
    // recorded per-job wall times (free for the workers), and point-in-time
    // gauges land in the registry.
    let mut latency = obs::LocalHistogram::new();
    for job in &jobs {
        latency.record(job.nanos / 1_000);
    }
    if let Some(registry) = &config.obs {
        registry.counter("engine.sweeps").inc();
        registry.gauge("bdd.shared.nodes").set(shared_nodes);
    }

    let operators = aggregate(&config.ops, &jobs);
    SweepReport {
        suite: suite.name().to_string(),
        backend: config.backend,
        threads,
        jobs,
        operators,
        wall_micros,
        shared_nodes,
        job_latency: latency.snapshot(),
    }
}

/// What a pool job's panic left behind: its slot index and the panic
/// payload rendered as text (for `panic!("...")` string payloads; anything
/// else is reported generically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the spec whose job panicked.
    pub slot: usize,
    /// The panic message, best-effort.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.slot, self.message)
    }
}

/// Renders a `catch_unwind` payload: `&str` and `String` payloads (what
/// `panic!` produces) verbatim, anything else generically.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fans `specs` over a pool of `threads` scoped workers, each with its own
/// local state from `init`, and scatters the results back into spec order.
///
/// Workers claim jobs from a shared atomic counter and accumulate
/// `(slot, result)` pairs locally — no shared lock in the hot loop (dense
/// quotient jobs are sub-microsecond; a per-job mutex would serialize the
/// pool). The slot scatter after the scope joins makes the output a pure
/// function of `specs`, independent of thread count and scheduling — the
/// bit-identical guarantee both sweep kinds advertise.
///
/// A panicking job does **not** poison the pool: the panic is caught at the
/// job boundary, the claiming worker rebuilds its local state (the panic may
/// have left it half-updated) and moves on to the next spec, and the
/// panicked slot comes back as [`Err(JobPanic)`](JobPanic) while every other
/// slot keeps its result. The infallible wrapper [`run_pool`] re-raises the
/// first such panic; callers that must survive poisoned work items (the
/// `bidecomp-service` request server) use this form directly.
///
/// This is the one worker-pool abstraction of the workspace: both sweep
/// kinds run on it, and the `bidecomp-service` job server drains its request
/// queue through it. It is generic over the spec, per-worker state and
/// result types precisely so those callers do not need pools of their own.
pub fn try_run_pool<S: Sync, L, R: Send>(
    specs: &[S],
    threads: usize,
    init: impl Fn() -> L + Sync,
    job: impl Fn(&mut L, &S) -> R + Sync,
) -> Vec<Result<R, JobPanic>> {
    let next = AtomicUsize::new(0);
    let worker_results: Vec<Vec<(usize, Result<R, JobPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        // AssertUnwindSafe: on panic the possibly-inconsistent
                        // worker state is discarded and rebuilt below, so no
                        // broken invariant outlives the catch.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            job(&mut state, spec)
                        }));
                        match result {
                            Ok(r) => local.push((i, Ok(r))),
                            Err(payload) => {
                                local.push((
                                    i,
                                    Err(JobPanic { slot: i, message: panic_message(&*payload) }),
                                ));
                                state = init();
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        // Join cannot fail on a job panic (caught above); only an unwind
        // outside the job boundary (e.g. in `init`) still aborts the pool.
        handles.into_iter().map(|h| h.join().expect("engine worker panicked")).collect()
    });
    let mut slots: Vec<Option<Result<R, JobPanic>>> = Vec::with_capacity(specs.len());
    slots.resize_with(specs.len(), || None);
    for (i, result) in worker_results.into_iter().flatten() {
        slots[i] = Some(result);
    }
    slots.into_iter().map(|r| r.expect("every claimed job writes its slot")).collect()
}

/// The infallible [`try_run_pool`]: both sweep kinds run on it, where a job
/// panic is a bug in the engine itself — the panic is re-raised (with its
/// original message and the slot index) after every worker has finished, so
/// one bad job cannot leave scoped threads detached mid-unwind.
///
/// # Panics
///
/// Re-raises the first job panic, if any.
pub fn run_pool<S: Sync, L, R: Send>(
    specs: &[S],
    threads: usize,
    init: impl Fn() -> L + Sync,
    job: impl Fn(&mut L, &S) -> R + Sync,
) -> Vec<R> {
    try_run_pool(specs, threads, init, job)
        .into_iter()
        .map(|slot| match slot {
            Ok(result) => result,
            Err(panic) => panic!("engine worker panicked: {panic}"),
        })
        .collect()
}

fn run_job(
    suite: &Suite,
    config: &EngineConfig,
    spec: JobSpec,
    buffers: &mut WorkerScratch,
) -> JobResult {
    match config.backend {
        Backend::Dense => run_job_dense(suite, config, spec, buffers),
        Backend::Bdd => run_job_bdd(suite, config, spec, buffers),
        Backend::BddShared => run_job_shared(suite, config, spec, buffers),
    }
}

fn run_job_dense(
    suite: &Suite,
    config: &EngineConfig,
    spec: JobSpec,
    buffers: &mut WorkerScratch,
) -> JobResult {
    debug_assert!(!spec.symbolic, "the dense backend never enumerates symbolic jobs");
    let inst = &suite.instances()[spec.instance];
    let f = &inst.outputs()[spec.output];
    let op = config.ops[spec.op_index];
    let start = Instant::now();

    let seed = config.job_seed(spec.instance, spec.output, spec.op_index);
    let g = seeded_divisor(f, op, seed);
    buffers.ensure(f.num_vars());
    match config.quotient_cache.as_deref().and_then(|c| c.lookup(f, &g, op)) {
        Some(h) => {
            // Cache hit: the full quotient is unique, so the cached sets are
            // bit-identical to what quotient_sets_into would compute.
            buffers.sets.on.copy_from(h.on());
            buffers.sets.dc.copy_from(h.dc());
            h.off_into(&mut buffers.sets.off);
        }
        None => {
            buffers.scratch.quotient_sets_into(f, &g, op, &mut buffers.sets);
            if let Some(cache) = config.quotient_cache.as_deref() {
                let h = Isf::new(buffers.sets.on.clone(), buffers.sets.dc.clone())
                    .expect("Table II on/dc sets are disjoint");
                cache.store(f, &g, op, &h);
            }
        }
    }
    // Phase boundaries are only clocked on the recorder's job sample
    // ([`PHASE_SAMPLE`]): two extra `Instant::now` calls on clocked jobs,
    // nothing otherwise.
    let clock = buffers.rec.as_mut().is_some_and(EngineRecorder::clock_phases);
    let quotient_done = clock.then(Instant::now);
    let sets = &buffers.sets;
    let verified = verify_decomposition_sets(f, &g, &sets.on, &sets.dc, op);
    let maximal = verify_maximal_flexibility_sets(f, &g, &sets.on, &sets.dc, op);
    let divisor_errors = care_errors(f, &g);
    let verify_done = clock.then(Instant::now);

    // Opt-in self-audit: replay the job's three verdicts through the SAT
    // oracle. Sampling keys on the job seed, so the audited subset — like
    // everything else in the report — is independent of scheduling.
    let (oracle_audited, oracle_agreed) = match &config.oracle {
        Some(oracle_config) if oracle_config.samples(seed) => {
            let h = Isf::new(sets.on.clone(), sets.dc.clone())
                .expect("Table II on/dc sets are disjoint");
            let divisor_agreed =
                Oracle::check_divisor(f, &g, op).is_ok() == is_valid_divisor(f, &g, op);
            let lemmas_agreed = Oracle::check_decomposition(f, &g, &h, op).is_ok() == verified;
            let corollaries_agreed =
                Oracle::check_maximal_flexibility(f, &g, &h, op).is_ok() == maximal;
            (true, divisor_agreed && lemmas_agreed && corollaries_agreed)
        }
        _ => (false, true),
    };

    let (on_minterms, dc_minterms, off_minterms) =
        (sets.on.count_ones(), sets.dc.count_ones(), sets.off.count_ones());
    let nanos = start.elapsed().as_nanos() as u64;
    if let Some(rec) = &mut buffers.rec {
        let phases = quotient_done.zip(verify_done).map(|(qd, vd)| {
            let quotient = (qd - start).as_nanos() as u64;
            let through_verify = (vd - start).as_nanos() as u64;
            (quotient, through_verify - quotient, nanos.saturating_sub(through_verify))
        });
        rec.record_job(nanos, phases);
    }
    JobResult {
        instance: inst.name().to_string(),
        output: spec.output,
        op,
        num_vars: f.num_vars(),
        on_minterms,
        dc_minterms,
        off_minterms,
        divisor_errors,
        verified,
        maximal,
        bdd_nodes: 0,
        oracle_audited,
        oracle_agreed,
        nanos,
    }
}

/// The symbolic job runner. Dense instances are lifted into the manager
/// (operands *and* noise words, so the divisor is bit-identical to the dense
/// backend's); symbolic instances build their structural description and a
/// seeded noise cover instead. Everything downstream — divisor algebra,
/// Table II quotient, both verifications — runs on BDDs.
fn run_job_bdd(
    suite: &Suite,
    config: &EngineConfig,
    spec: JobSpec,
    buffers: &mut WorkerScratch,
) -> JobResult {
    let op = config.ops[spec.op_index];
    // Seed-stability: symbolic instances continue the dense index space, so
    // job seeds never collide and never depend on filtering or scheduling.
    let seed_instance =
        if spec.symbolic { suite.instances().len() + spec.instance } else { spec.instance };
    let seed = config.job_seed(seed_instance, spec.output, spec.op_index);
    let (name, num_vars) = if spec.symbolic {
        let inst = &suite.symbolic_instances()[spec.instance];
        (inst.name(), inst.num_inputs())
    } else {
        let inst = &suite.instances()[spec.instance];
        (inst.name(), inst.num_inputs())
    };
    let start = Instant::now();

    let clock = buffers.rec.as_mut().is_some_and(EngineRecorder::clock_phases);
    let mgr = buffers.manager_for(num_vars);
    if let Some(rc) = &config.reorder {
        mgr.set_sift_config(SiftConfig {
            max_growth: rc.max_growth,
            node_budget: rc.node_budget,
            auto_threshold: rc.sift_threshold,
            ..SiftConfig::default()
        });
    }
    let (f_on, f_dc, noise) = if spec.symbolic {
        let inst = &suite.symbolic_instances()[spec.instance];
        let cover = benchmarks::symbolic::noise_cover(num_vars, seed);
        // FORCE static seeding: cover-described jobs expose their cube
        // structure, so the manager can start from an order in which
        // cubewise-connected variables are adjacent. Must happen before the
        // first node is built; the manager is freshly cleared here.
        if let Some(rc) = &config.reorder {
            if rc.static_seed {
                if let SymbolicFunction::CoverIsf { on, dc } = &inst.outputs()[spec.output] {
                    let order = force_order(num_vars, &[on, dc, &cover]);
                    mgr.set_order(&order);
                }
            }
        }
        let (f_on, f_dc) = inst.build_output(mgr, spec.output);
        let noise = mgr.cover(&cover);
        (f_on, f_dc, noise)
    } else {
        let f = &suite.instances()[spec.instance].outputs()[spec.output];
        let f_on = mgr.from_truth_table(f.on());
        let f_dc = mgr.from_truth_table(f.dc());
        // The same noise words the dense backend draws, lifted symbolically.
        let mut rng = DetRng::seed_from_u64(seed);
        let noise_tt = TruthTable::from_words(num_vars, || rng.next_u64());
        let noise = mgr.from_truth_table(&noise_tt);
        (f_on, f_dc, noise)
    };
    // Sift points name every handle still needed downstream: a pass
    // invalidates anything not reachable from its roots.
    mgr.maybe_sift(&[f_on, f_dc, noise]);

    let g = seeded_divisor_bdd(mgr, f_on, f_dc, noise, op);
    // Unconditional (not a debug_assert): the check is cheap next to the
    // quotient, and running it in every profile keeps `bdd_nodes` — which is
    // part of the scheduling-independent `semantic()` data — identical
    // between debug and release builds.
    assert!(
        is_valid_divisor_bdd(mgr, f_on, f_dc, g, op),
        "seeded divisor violates the {op} side condition"
    );
    mgr.maybe_sift(&[f_on, f_dc, g]);
    let (h_on, h_dc) = full_quotient_bdd(mgr, f_on, f_dc, g, op);
    mgr.maybe_sift(&[f_on, f_dc, g, h_on, h_dc]);
    // Quotient phase ends here (build + divisor + Table II quotient); what
    // follows — both verifications and the model counting — is the verify
    // phase. Clocked only on the recorder's job sample ([`PHASE_SAMPLE`]).
    let quotient_done = clock.then(Instant::now);
    let verified = verify_decomposition_bdd(mgr, f_on, f_dc, g, h_on, h_dc, op);
    let maximal = verify_maximal_flexibility_bdd(mgr, f_on, f_dc, g, h_on, h_dc, op);

    let h_off = quotient_off_bdd(mgr, h_on, h_dc);
    let err = {
        let x = mgr.xor(g, f_on);
        mgr.diff(x, f_dc)
    };
    let (on_minterms, dc_minterms, off_minterms, divisor_errors) =
        (mgr.sat_count(h_on), mgr.sat_count(h_dc), mgr.sat_count(h_off), mgr.sat_count(err));
    let bdd_nodes = mgr.num_nodes() as u64;
    let nanos = start.elapsed().as_nanos() as u64;
    if let Some(rec) = &mut buffers.rec {
        let phases = quotient_done.map(|qd| {
            let quotient = (qd - start).as_nanos() as u64;
            (quotient, nanos.saturating_sub(quotient), 0)
        });
        rec.record_job(nanos, phases);
        // `manager_for` cleared the manager (and its stats) when this job
        // began, so the accumulated stats are exactly this job's counts.
        let stats = buffers.mgr.as_ref().expect("manager ensured above").stats();
        rec.bdd.accumulate(&stats);
    }
    JobResult {
        instance: name.to_string(),
        output: spec.output,
        op,
        num_vars,
        on_minterms,
        dc_minterms,
        off_minterms,
        divisor_errors,
        verified,
        maximal,
        bdd_nodes,
        // The oracle audit needs dense tables; symbolic jobs are never
        // audited, so the BDD backend reports every job as unaudited.
        oracle_audited: false,
        oracle_agreed: true,
        nanos,
    }
}

/// The shared-store job runner: [`run_job_bdd`]'s pipeline on the worker's
/// [`WorkerCtx`] view of the one sweep-wide [`SharedManager`].
///
/// Differences from the per-worker manager path, both consequences of the
/// store being shared:
///
/// * **No reordering.** The store's variable order is fixed for the whole
///   sweep (the quiescence rule: sifting moves nodes, which would invalidate
///   handles other workers hold), so [`EngineConfig::reorder`] is ignored.
/// * **Arity lifting.** Every job runs over the variable prefix of the one
///   store (sized at the sweep's widest arity). The store's extra variables
///   are don't-appear variables of every job function, so each reported
///   count is the store-wide count shifted down by the unused variables —
///   bit-identical to the counts an exact-arity manager reports.
///
/// Per-job `bdd_nodes` is reported as 0: nodes are globally pooled and
/// job-attribution would depend on scheduling. The store-wide total (equal
/// to its peak — the shared arena is append-only) is reported once, in
/// [`SweepReport::shared_nodes`].
fn run_job_shared(
    suite: &Suite,
    config: &EngineConfig,
    spec: JobSpec,
    buffers: &mut WorkerScratch,
) -> JobResult {
    let op = config.ops[spec.op_index];
    // Same seed derivation as the other backends: symbolic instances continue
    // the dense index space.
    let seed_instance =
        if spec.symbolic { suite.instances().len() + spec.instance } else { spec.instance };
    let seed = config.job_seed(seed_instance, spec.output, spec.op_index);
    let (name, num_vars) = if spec.symbolic {
        let inst = &suite.symbolic_instances()[spec.instance];
        (inst.name(), inst.num_inputs())
    } else {
        let inst = &suite.instances()[spec.instance];
        (inst.name(), inst.num_inputs())
    };
    let start = Instant::now();

    let obs_on = buffers.rec.is_some();
    let clock = buffers.rec.as_mut().is_some_and(EngineRecorder::clock_phases);
    let ctx = buffers.ctx.as_mut().expect("the shared backend seeds every worker with a context");
    let shift = ctx.num_vars() - num_vars;
    let (f_on, f_dc, noise) = if spec.symbolic {
        let inst = &suite.symbolic_instances()[spec.instance];
        let cover = benchmarks::symbolic::noise_cover(num_vars, seed);
        let (f_on, f_dc) = inst.build_output(ctx, spec.output);
        let noise = ctx.cover(&cover);
        (f_on, f_dc, noise)
    } else {
        let f = &suite.instances()[spec.instance].outputs()[spec.output];
        let f_on = ctx.from_truth_table(f.on());
        let f_dc = ctx.from_truth_table(f.dc());
        // The same noise words the dense backend draws, lifted symbolically.
        let mut rng = DetRng::seed_from_u64(seed);
        let noise_tt = TruthTable::from_words(num_vars, || rng.next_u64());
        let noise = ctx.from_truth_table(&noise_tt);
        (f_on, f_dc, noise)
    };

    let g = seeded_divisor_bdd(ctx, f_on, f_dc, noise, op);
    assert!(
        is_valid_divisor_bdd(ctx, f_on, f_dc, g, op),
        "seeded divisor violates the {op} side condition"
    );
    let (h_on, h_dc) = full_quotient_bdd(ctx, f_on, f_dc, g, op);
    // Same phase split as the private BDD backend: everything up to the
    // quotient counts as the quotient phase, verification and counting as
    // the verify phase. Clocked on the job sample ([`PHASE_SAMPLE`]).
    let quotient_done = clock.then(Instant::now);
    let verified = verify_decomposition_bdd(ctx, f_on, f_dc, g, h_on, h_dc, op);
    let maximal = verify_maximal_flexibility_bdd(ctx, f_on, f_dc, g, h_on, h_dc, op);

    let h_off = quotient_off_bdd(ctx, h_on, h_dc);
    let err = {
        let x = ctx.xor(g, f_on);
        ctx.diff(x, f_dc)
    };
    let (on_minterms, dc_minterms, off_minterms, divisor_errors) = (
        ctx.sat_count(h_on) >> shift,
        ctx.sat_count(h_dc) >> shift,
        ctx.sat_count(h_off) >> shift,
        ctx.sat_count(err) >> shift,
    );
    // The worker context's stats accumulate across jobs; taking and
    // resetting them per job yields the per-job delta for the recorder.
    let job_stats = obs_on.then(|| {
        let stats = ctx.stats();
        ctx.reset_stats();
        stats
    });
    let nanos = start.elapsed().as_nanos() as u64;
    if let Some(rec) = &mut buffers.rec {
        let phases = quotient_done.map(|qd| {
            let quotient = (qd - start).as_nanos() as u64;
            (quotient, nanos.saturating_sub(quotient), 0)
        });
        rec.record_job(nanos, phases);
        rec.bdd.accumulate(&job_stats.expect("taken with the recorder"));
    }
    JobResult {
        instance: name.to_string(),
        output: spec.output,
        op,
        num_vars,
        on_minterms,
        dc_minterms,
        off_minterms,
        divisor_errors,
        verified,
        maximal,
        bdd_nodes: 0,
        // Like the per-worker BDD backend: the oracle needs dense tables.
        oracle_audited: false,
        oracle_agreed: true,
        nanos,
    }
}

/// Number of care minterms of `f` on which `g` disagrees with `f`, counted
/// word-parallel without allocating (`(g ⊕ f_on) ∩ ¬f_dc`).
fn care_errors(f: &Isf, g: &TruthTable) -> u64 {
    let fw = f.on().as_words();
    let dw = f.dc().as_words();
    let gw = g.as_words();
    fw.iter().zip(dw).zip(gw).map(|((&on, &dc), &gv)| ((gv ^ on) & !dc).count_ones() as u64).sum()
}

/// Configuration of a [`sweep_synthesis`] run: pool sizing and instance
/// filtering as in [`EngineConfig`], plus the [`RecursiveConfig`] every job
/// synthesizes under.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub threads: usize,
    /// Skip instances with more than this many inputs (recursive synthesis
    /// needs the dense representation, so symbolic instances are never
    /// enumerated).
    pub max_inputs: usize,
    /// Use at most this many outputs per instance.
    pub max_outputs: usize,
    /// Base seed mixed into every job (only [`ApproxStrategy::Seeded`]
    /// portfolio entries consume it; the expansion strategies are
    /// deterministic on their own).
    pub seed: u64,
    /// The portfolio and termination knobs of the recursive synthesizer.
    pub recursive: RecursiveConfig,
    /// Optional shared quotient memoization, plugged into every worker's
    /// synthesizer so subproblems recur across levels *and* jobs (see
    /// [`EngineConfig::quotient_cache`]; results are bit-identical either
    /// way).
    pub quotient_cache: Option<SharedQuotientCache>,
    /// Optional observability registry (see [`EngineConfig::obs`]): the
    /// synthesis phase timer and per-job latency histogram are merged in
    /// after the pool joins. Results are bit-identical with or without it.
    pub obs: Option<Arc<obs::Registry>>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            threads: 0,
            max_inputs: 12,
            max_outputs: 6,
            seed: 0xB1DE_C04D,
            recursive: RecursiveConfig::default(),
            quotient_cache: None,
            obs: None,
        }
    }
}

impl SynthesisConfig {
    /// The worker-pool size actually used (see
    /// [`EngineConfig::effective_threads`]).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// The seed of job `(instance_index, output_index)` — a pure function of
    /// the base seed and the two indices, never of thread count or
    /// scheduling.
    pub fn job_seed(&self, instance: usize, output: usize) -> u64 {
        let mixed = self.seed
            ^ (instance as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (output as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        DetRng::seed_from_u64(mixed).next_u64()
    }
}

/// The outcome of one `(instance, output)` recursive-synthesis job.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisJobResult {
    /// Benchmark instance name.
    pub instance: String,
    /// Output index within the instance.
    pub output: usize,
    /// Arity of the function.
    pub num_vars: usize,
    /// Logic-gate count of the produced multi-level network.
    pub gates: usize,
    /// Bi-decomposition depth of the produced tree (0 = realized flat).
    pub depth: usize,
    /// Number of bi-decomposition branches in the tree.
    pub branches: usize,
    /// Mapped area of the produced network.
    pub mapped_area: f64,
    /// Mapped area of the flat 2-SPP realization the recursion competed
    /// against.
    pub flat_area: f64,
    /// `true` if exhaustive `Network::eval` agreed with `f` on every care
    /// minterm.
    pub verified: bool,
    /// Wall time of the job in nanoseconds. Excluded from determinism
    /// comparisons.
    pub nanos: u64,
}

impl SynthesisJobResult {
    /// Mapped-area gain over the flat 2-SPP realization, in percent.
    pub fn gain_percent(&self) -> f64 {
        if self.flat_area == 0.0 {
            0.0
        } else {
            (self.flat_area - self.mapped_area) / self.flat_area * 100.0
        }
    }

    /// The scheduling-independent portion of the result (everything except
    /// the wall time), for bit-identical comparisons across thread counts.
    /// The two areas are pure f64 functions of the inputs, so exact equality
    /// is the right comparison.
    #[allow(clippy::type_complexity)]
    pub fn semantic(&self) -> (&str, usize, usize, usize, usize, usize, u64, u64, bool) {
        (
            &self.instance,
            self.output,
            self.num_vars,
            self.gates,
            self.depth,
            self.branches,
            self.mapped_area.to_bits(),
            self.flat_area.to_bits(),
            self.verified,
        )
    }
}

/// The machine-readable result of a synthesis sweep: per-job results in
/// deterministic `(instance, output)` order.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Name of the suite that was swept.
    pub suite: String,
    /// Worker threads used.
    pub threads: usize,
    /// One result per job, in `(instance, output)` order — independent of
    /// scheduling.
    pub jobs: Vec<SynthesisJobResult>,
    /// End-to-end wall time of the sweep in microseconds.
    pub wall_micros: u64,
}

impl SynthesisReport {
    /// Total number of jobs.
    pub fn total_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if every produced network verified against its function.
    pub fn all_verified(&self) -> bool {
        self.jobs.iter().all(|j| j.verified)
    }

    /// Total logic gates across all produced networks.
    pub fn total_gates(&self) -> usize {
        self.jobs.iter().map(|j| j.gates).sum()
    }

    /// Mean per-job mapped-area gain over the flat 2-SPP realization, in
    /// percent (0 for an empty sweep).
    pub fn average_gain_percent(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(SynthesisJobResult::gain_percent).sum::<f64>()
                / self.jobs.len() as f64
        }
    }
}

/// The second sweep kind: fans the recursive bi-decomposition synthesizer
/// ([`RecursiveSynthesizer`]) over every `(instance, output)` pair of
/// `suite`'s dense instances, on the same slot-indexed worker pool as
/// [`sweep`]. Results are bit-identical for any thread count, and every
/// produced network is exhaustively verified against its function's care
/// set.
///
/// ```rust
/// use benchmarks::Suite;
/// use bidecomp::engine::{sweep_synthesis, SynthesisConfig};
///
/// let report = sweep_synthesis(&Suite::smoke(), &SynthesisConfig::default());
/// assert!(report.all_verified());
/// assert!(report.average_gain_percent() >= 0.0);
/// ```
///
/// # Panics
///
/// Panics if the portfolio contains [`ApproxStrategy::External`]: there is
/// no caller to supply a divisor inside the recursion.
pub fn sweep_synthesis(suite: &Suite, config: &SynthesisConfig) -> SynthesisReport {
    assert!(
        !config.recursive.portfolio.iter().any(|(_, s)| *s == ApproxStrategy::External),
        "the External strategy has no divisor to derive inside a synthesis sweep"
    );
    let instances = suite.instances();
    let mut specs = Vec::new();
    for (instance, inst) in instances.iter().enumerate() {
        if inst.num_inputs() > config.max_inputs {
            continue;
        }
        for output in 0..inst.num_outputs().min(config.max_outputs) {
            specs.push((instance, output));
        }
    }

    let threads = config.effective_threads().clamp(1, specs.len().max(1));
    let start = Instant::now();
    let jobs = run_pool(
        &specs,
        threads,
        || {
            let synthesizer = RecursiveSynthesizer::new(config.recursive.clone());
            match config.quotient_cache.clone() {
                Some(cache) => synthesizer.with_quotient_cache(cache),
                None => synthesizer,
            }
        },
        |synthesizer, &(instance, output)| {
            let inst = &instances[instance];
            let f = &inst.outputs()[output];
            let job_start = Instant::now();
            let result = synthesizer
                .synthesize_seeded(f, config.job_seed(instance, output))
                .expect("portfolio validated before the sweep started");
            SynthesisJobResult {
                instance: inst.name().to_string(),
                output,
                num_vars: f.num_vars(),
                gates: result.gate_count(),
                depth: result.tree.depth(),
                branches: result.tree.num_branches(),
                mapped_area: result.mapped_area,
                flat_area: result.flat_area,
                verified: result.verified,
                nanos: job_start.elapsed().as_nanos() as u64,
            }
        },
    );
    let wall_micros = start.elapsed().as_micros() as u64;

    // Synthesis jobs are single-phase, so the merge happens once, after the
    // pool joins — zero cost on the workers.
    if let Some(registry) = &config.obs {
        registry.add("engine.synthesis_jobs", jobs.len() as u64);
        registry.add("engine.synthesis_nanos", jobs.iter().map(|j| j.nanos).sum());
        let mut latency = obs::LocalHistogram::new();
        for job in &jobs {
            latency.record(job.nanos / 1_000);
        }
        latency.merge_into(&registry.histogram("engine.synthesis_job_micros"));
    }

    SynthesisReport { suite: suite.name().to_string(), threads, jobs, wall_micros }
}

fn aggregate(ops: &[BinaryOp], jobs: &[JobResult]) -> Vec<OperatorStats> {
    ops.iter()
        .map(|&op| {
            let mut stats = OperatorStats {
                op,
                jobs: 0,
                verified: 0,
                maximal: 0,
                on_minterms: 0,
                dc_minterms: 0,
                divisor_errors: 0,
                nanos: 0,
            };
            for job in jobs.iter().filter(|j| j.op == op) {
                stats.jobs += 1;
                stats.verified += u64::from(job.verified);
                stats.maximal += u64::from(job.maximal);
                stats.on_minterms += job.on_minterms;
                stats.dc_minterms += job.dc_minterms;
                stats.divisor_errors += job.divisor_errors;
                stats.nanos += job.nanos;
            }
            stats
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn smoke_sweep_runs_all_jobs_and_verifies() {
        let suite = Suite::smoke();
        let config = EngineConfig { threads: 2, ..EngineConfig::default() };
        let report = sweep(&suite, &config);
        // 3 smoke instances, outputs capped at 6, 10 operators each.
        let expected: usize = suite
            .instances()
            .iter()
            .map(|i| i.num_outputs().min(config.max_outputs) * config.ops.len())
            .sum();
        assert_eq!(report.total_jobs(), expected);
        assert!(report.all_verified());
        assert_eq!(report.operators.iter().map(|s| s.jobs).sum::<u64>(), expected as u64);
    }

    /// Runs `f` with the panic hook silenced (the intentional panics below
    /// would read like real failures in test output). A static mutex keeps
    /// concurrent tests from clobbering each other's take/restore pair.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        static HOOK: Mutex<()> = Mutex::new(());
        let _guard = HOOK.lock().expect("panic-hook guard poisoned");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(hook);
        result
    }

    #[test]
    fn pool_isolates_a_panicking_job_without_losing_other_slots() {
        let specs: Vec<u32> = (0..64).collect();
        let results = with_quiet_panics(|| {
            try_run_pool(
                &specs,
                4,
                || 0u32,
                |state, spec| {
                    *state += 1;
                    if *spec % 17 == 3 {
                        panic!("poisoned spec {spec}");
                    }
                    spec * 2
                },
            )
        });
        assert_eq!(results.len(), specs.len());
        for (spec, result) in specs.iter().zip(&results) {
            if spec % 17 == 3 {
                let panic = result.as_ref().expect_err("a panicking spec must surface its panic");
                assert_eq!(panic.slot, *spec as usize);
                assert_eq!(panic.message, format!("poisoned spec {spec}"));
            } else {
                assert_eq!(
                    result.as_ref(),
                    Ok(&(spec * 2)),
                    "slot {spec} lost its result to an unrelated panic"
                );
            }
        }
    }

    #[test]
    fn infallible_pool_reraises_the_job_panic() {
        let outcome = with_quiet_panics(|| {
            std::panic::catch_unwind(|| {
                run_pool(
                    &[1u32, 2, 3],
                    2,
                    || (),
                    |(), spec| {
                        if *spec == 2 {
                            panic!("job two exploded");
                        }
                        *spec
                    },
                )
            })
        });
        let payload = outcome.expect_err("the wrapper must re-raise");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("job two exploded"), "got: {message}");
        assert!(message.contains("job 1"), "slot index named: {message}");
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let suite = Suite::smoke();
        let one = sweep(&suite, &EngineConfig { threads: 1, ..EngineConfig::default() });
        let four = sweep(&suite, &EngineConfig { threads: 4, ..EngineConfig::default() });
        assert_eq!(one.total_jobs(), four.total_jobs());
        for (a, b) in one.jobs.iter().zip(&four.jobs) {
            assert_eq!(a.semantic(), b.semantic());
        }
        assert_eq!(
            one.operators.iter().map(|s| (s.op, s.jobs, s.dc_minterms)).collect::<Vec<_>>(),
            four.operators.iter().map(|s| (s.op, s.jobs, s.dc_minterms)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn oracle_audit_samples_jobs_and_always_agrees() {
        let suite = Suite::smoke();
        let plain = sweep(&suite, &EngineConfig { threads: 2, ..EngineConfig::default() });
        assert_eq!(plain.oracle_audited(), 0, "the audit is opt-in");
        assert_eq!(plain.oracle_disagreements(), 0);

        let config = EngineConfig {
            threads: 2,
            oracle: Some(OracleConfig { sample_every: 1 }),
            ..EngineConfig::default()
        };
        let audited = sweep(&suite, &config);
        assert_eq!(audited.oracle_audited(), audited.total_jobs() as u64);
        assert_eq!(audited.oracle_disagreements(), 0, "three-way disagreement is a bug");
        // The audit only observes: every other field is bit-identical to the
        // unaudited sweep.
        for (a, b) in plain.jobs.iter().zip(&audited.jobs) {
            let (mut sa, sb) = (a.semantic(), b.semantic());
            sa.11 .0 = sb.11 .0; // oracle_audited is the opt-in difference
            assert_eq!(sa, sb);
        }

        // Sparse sampling audits a deterministic, seed-keyed subset.
        let sparse_config =
            EngineConfig { oracle: Some(OracleConfig { sample_every: 4 }), ..config };
        let sparse = sweep(&suite, &sparse_config);
        assert!(sparse.oracle_audited() < sparse.total_jobs() as u64);
        assert!(sparse.oracle_audited() > 0, "1-in-4 sampling should hit some of 150 jobs");
        let again = sweep(&suite, &sparse_config);
        for (a, b) in sparse.jobs.iter().zip(&again.jobs) {
            assert_eq!(a.semantic(), b.semantic(), "sampling must be deterministic");
        }
    }

    #[test]
    fn seeded_divisors_are_valid_for_every_operator() {
        let suite = Suite::smoke();
        for inst in suite.instances() {
            for f in inst.outputs() {
                for (i, op) in BinaryOp::all().into_iter().enumerate() {
                    let g = seeded_divisor(f, op, 0xFACE ^ i as u64);
                    assert!(is_valid_divisor(f, &g, op), "{}: {op}", inst.name());
                    // Same seed, same divisor.
                    assert_eq!(g, seeded_divisor(f, op, 0xFACE ^ i as u64));
                }
            }
        }
    }

    #[test]
    fn max_inputs_filter_skips_large_instances() {
        let suite = Suite::table4();
        let config = EngineConfig { max_inputs: 4, ..EngineConfig::default() };
        let report = sweep(&suite, &config);
        assert_eq!(report.total_jobs(), 0);
        assert!(report.all_verified(), "vacuously true on an empty job list");
    }

    #[test]
    fn bdd_backend_matches_the_dense_backend_on_smoke() {
        let suite = Suite::smoke();
        let dense = sweep(&suite, &EngineConfig { threads: 2, ..EngineConfig::default() });
        let bdd = sweep(
            &suite,
            &EngineConfig { threads: 2, backend: Backend::Bdd, ..EngineConfig::default() },
        );
        assert_eq!(dense.total_jobs(), bdd.total_jobs());
        for (d, b) in dense.jobs.iter().zip(&bdd.jobs) {
            assert_eq!(
                (&d.instance, d.output, d.op, d.on_minterms, d.dc_minterms, d.off_minterms),
                (&b.instance, b.output, b.op, b.on_minterms, b.dc_minterms, b.off_minterms),
                "backends disagree on {}[{}] {}",
                d.instance,
                d.output,
                d.op
            );
            assert_eq!(d.divisor_errors, b.divisor_errors);
            assert!(b.verified && b.maximal, "{}[{}] {}", b.instance, b.output, b.op);
            assert!(b.bdd_nodes > 0, "BDD jobs must report their manager size");
        }
    }

    #[test]
    fn bdd_backend_sweeps_the_large_suite_symbolically() {
        let suite = Suite::large();
        let config = EngineConfig {
            threads: 2,
            backend: Backend::Bdd,
            max_outputs: 2,
            ..EngineConfig::default()
        };
        let report = sweep(&suite, &config);
        let expected: usize = suite
            .symbolic_instances()
            .iter()
            .map(|i| i.num_outputs().min(config.max_outputs) * config.ops.len())
            .sum();
        assert_eq!(report.total_jobs(), expected);
        assert!(report.all_verified(), "every symbolic job must verify Lemmas 1–5");
        // The suite genuinely exceeds the dense representation.
        assert!(report.jobs.iter().any(|j| j.num_vars > boolfunc::TruthTable::MAX_VARS));
        assert!(report.jobs.iter().any(|j| j.num_vars >= 40));
        // And the dense backend cannot even enumerate these jobs.
        let dense_config = EngineConfig { backend: Backend::Dense, ..config };
        assert_eq!(sweep(&suite, &dense_config).total_jobs(), 0);
    }

    #[test]
    fn synthesis_sweep_verifies_every_network_on_smoke() {
        let suite = Suite::smoke();
        let config = SynthesisConfig { threads: 2, ..SynthesisConfig::default() };
        let report = sweep_synthesis(&suite, &config);
        let expected: usize =
            suite.instances().iter().map(|i| i.num_outputs().min(config.max_outputs)).sum();
        assert_eq!(report.total_jobs(), expected);
        assert!(report.all_verified(), "every produced network must verify");
        assert!(report.average_gain_percent() >= 0.0, "flat is always a candidate");
        for job in &report.jobs {
            assert!(job.flat_area >= job.mapped_area, "{}[{}]", job.instance, job.output);
        }
    }

    #[test]
    fn synthesis_sweep_filters_oversized_instances() {
        let config = SynthesisConfig { max_inputs: 4, ..SynthesisConfig::default() };
        let report = sweep_synthesis(&Suite::table4(), &config);
        assert_eq!(report.total_jobs(), 0);
        assert!(report.all_verified(), "vacuously true on an empty job list");
        assert_eq!(report.average_gain_percent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "External strategy")]
    fn synthesis_sweep_rejects_external_portfolio_entries() {
        let mut config = SynthesisConfig::default();
        config.recursive.portfolio.push((BinaryOp::And, ApproxStrategy::External));
        sweep_synthesis(&Suite::smoke(), &config);
    }

    #[test]
    fn sweep_with_quotient_cache_is_bit_identical() {
        use crate::cache::testutil::MapCache;
        use std::sync::atomic::Ordering;
        use std::sync::Arc;

        let suite = Suite::smoke();
        let plain = sweep(&suite, &EngineConfig { threads: 2, ..EngineConfig::default() });
        let cache = Arc::new(MapCache::default());
        let config = EngineConfig {
            threads: 2,
            quotient_cache: Some(cache.clone()),
            ..EngineConfig::default()
        };
        let cached = sweep(&suite, &config);
        // Run the same sweep again so every job replays from the cache.
        let warm = sweep(&suite, &config);
        assert_eq!(plain.total_jobs(), cached.total_jobs());
        for (a, b, c) in
            plain.jobs.iter().zip(&cached.jobs).zip(&warm.jobs).map(|((a, b), c)| (a, b, c))
        {
            assert_eq!(a.semantic(), b.semantic());
            assert_eq!(a.semantic(), c.semantic());
        }
        assert_eq!(
            cache.hits.load(Ordering::Relaxed),
            plain.total_jobs() as u64,
            "the second sweep must answer every job from the cache"
        );
    }

    #[test]
    fn synthesis_sweep_with_quotient_cache_is_bit_identical() {
        use crate::cache::testutil::MapCache;
        use std::sync::atomic::Ordering;
        use std::sync::Arc;

        let suite = Suite::smoke();
        let plain = sweep_synthesis(&suite, &SynthesisConfig::default());
        let cache = Arc::new(MapCache::default());
        let config =
            SynthesisConfig { quotient_cache: Some(cache.clone()), ..SynthesisConfig::default() };
        let cached = sweep_synthesis(&suite, &config);
        let warm = sweep_synthesis(&suite, &config);
        assert_eq!(plain.total_jobs(), cached.total_jobs());
        for (a, b) in plain.jobs.iter().zip(&cached.jobs) {
            assert_eq!(a.semantic(), b.semantic());
        }
        for (a, b) in plain.jobs.iter().zip(&warm.jobs) {
            assert_eq!(a.semantic(), b.semantic());
        }
        assert!(cache.hits.load(Ordering::Relaxed) > 0, "the warm sweep must hit");
    }

    #[test]
    fn bdd_backend_is_deterministic_across_thread_counts() {
        let suite = Suite::large();
        let base = EngineConfig {
            backend: Backend::Bdd,
            max_outputs: 1,
            ops: vec![BinaryOp::And, BinaryOp::Xor],
            ..EngineConfig::default()
        };
        let one = sweep(&suite, &EngineConfig { threads: 1, ..base.clone() });
        let four = sweep(&suite, &EngineConfig { threads: 4, ..base });
        assert_eq!(one.total_jobs(), four.total_jobs());
        for (a, b) in one.jobs.iter().zip(&four.jobs) {
            assert_eq!(a.semantic(), b.semantic());
        }
    }

    #[test]
    fn bdd_reordering_changes_only_node_counts() {
        // Dynamic variable ordering must be semantically invisible: every
        // report field except bdd_nodes (and wall time) is unchanged.
        let suite = Suite::large();
        let base = EngineConfig {
            threads: 2,
            backend: Backend::Bdd,
            max_outputs: 1,
            ops: vec![BinaryOp::And, BinaryOp::Or, BinaryOp::Xor],
            ..EngineConfig::default()
        };
        let fixed = sweep(&suite, &base.clone());
        let reordered = sweep(
            &suite,
            &EngineConfig {
                reorder: Some(ReorderConfig { sift_threshold: 512, ..ReorderConfig::default() }),
                ..base
            },
        );
        assert_eq!(fixed.total_jobs(), reordered.total_jobs());
        let mut some_job_shrank = false;
        for (a, b) in fixed.jobs.iter().zip(&reordered.jobs) {
            assert_eq!(
                (&a.instance, a.output, a.op, a.num_vars),
                (&b.instance, b.output, b.op, b.num_vars)
            );
            assert_eq!(
                (a.on_minterms, a.dc_minterms, a.off_minterms, a.divisor_errors),
                (b.on_minterms, b.dc_minterms, b.off_minterms, b.divisor_errors),
                "reordering changed the semantics of {}[{}] {}",
                a.instance,
                a.output,
                a.op
            );
            assert_eq!((a.verified, a.maximal), (b.verified, b.maximal));
            some_job_shrank |= b.bdd_nodes < a.bdd_nodes;
        }
        assert!(some_job_shrank, "reordering should shrink at least one large-suite job");
    }

    /// The semantic tuple minus `bdd_nodes`: the shared backend pools nodes
    /// (per-job counts are reported as 0), so cross-backend comparisons pin
    /// every field except node attribution.
    #[allow(clippy::type_complexity)]
    fn semantic_sans_nodes(
        j: &JobResult,
    ) -> (&str, usize, BinaryOp, usize, u64, u64, u64, u64, bool, bool) {
        (
            &j.instance,
            j.output,
            j.op,
            j.num_vars,
            j.on_minterms,
            j.dc_minterms,
            j.off_minterms,
            j.divisor_errors,
            j.verified,
            j.maximal,
        )
    }

    #[test]
    fn shared_backend_matches_the_private_backends_on_smoke() {
        let suite = Suite::smoke();
        let dense = sweep(&suite, &EngineConfig { threads: 2, ..EngineConfig::default() });
        let bdd = sweep(
            &suite,
            &EngineConfig { threads: 2, backend: Backend::Bdd, ..EngineConfig::default() },
        );
        let shared = sweep(
            &suite,
            &EngineConfig { threads: 2, backend: Backend::BddShared, ..EngineConfig::default() },
        );
        assert_eq!(dense.total_jobs(), shared.total_jobs());
        assert_eq!(bdd.total_jobs(), shared.total_jobs());
        for ((d, b), s) in dense.jobs.iter().zip(&bdd.jobs).zip(&shared.jobs) {
            assert_eq!(semantic_sans_nodes(d), semantic_sans_nodes(s));
            assert_eq!(semantic_sans_nodes(b), semantic_sans_nodes(s));
            assert_eq!(s.bdd_nodes, 0, "shared jobs pool their nodes");
        }
        assert_eq!(dense.shared_nodes, 0);
        assert_eq!(bdd.shared_nodes, 0);
        assert!(shared.shared_nodes > 1, "the one store must have built real nodes");
    }

    #[test]
    fn shared_backend_is_deterministic_across_thread_counts_and_reruns() {
        let suite = Suite::large();
        let base = EngineConfig {
            backend: Backend::BddShared,
            max_outputs: 1,
            ops: vec![BinaryOp::And, BinaryOp::Xor],
            ..EngineConfig::default()
        };
        let one = sweep(&suite, &EngineConfig { threads: 1, ..base.clone() });
        let two = sweep(&suite, &EngineConfig { threads: 2, ..base.clone() });
        let eight = sweep(&suite, &EngineConfig { threads: 8, ..base.clone() });
        let again = sweep(&suite, &EngineConfig { threads: 8, ..base.clone() });
        assert!(one.all_verified(), "every shared symbolic job must verify");
        assert!(one.jobs.iter().any(|j| j.num_vars >= 40), "the large suite reaches 40 inputs");
        assert_eq!(one.total_jobs(), eight.total_jobs());
        for ((a, b), (c, d)) in
            one.jobs.iter().zip(&two.jobs).zip(eight.jobs.iter().zip(&again.jobs))
        {
            assert_eq!(a.semantic(), b.semantic(), "shared sweep depends on thread count");
            assert_eq!(a.semantic(), c.semantic(), "shared sweep depends on thread count");
            assert_eq!(a.semantic(), d.semantic(), "shared sweep is not rerun-stable");
        }
        // The final node-set is demand-determined: hash consing makes the
        // store contents (not just the report) independent of scheduling.
        assert_eq!(one.shared_nodes, eight.shared_nodes);
        assert_eq!(one.shared_nodes, again.shared_nodes);

        // Reordering is ignored on the shared backend (quiescence rule), so a
        // reorder config changes nothing at all.
        let reordered = sweep(
            &suite,
            &EngineConfig { threads: 2, reorder: Some(ReorderConfig::default()), ..base },
        );
        for (a, b) in one.jobs.iter().zip(&reordered.jobs) {
            assert_eq!(a.semantic(), b.semantic());
        }
        assert_eq!(one.shared_nodes, reordered.shared_nodes);
    }

    #[test]
    fn bdd_reordering_is_deterministic_across_thread_counts() {
        // With sifting enabled, bdd_nodes depends on the reordering — which
        // must itself be deterministic, so the full semantic tuple (including
        // bdd_nodes) stays bit-identical across thread counts and reruns.
        let suite = Suite::large();
        let base = EngineConfig {
            backend: Backend::Bdd,
            max_outputs: 1,
            ops: vec![BinaryOp::And, BinaryOp::Xor],
            reorder: Some(ReorderConfig { sift_threshold: 512, ..ReorderConfig::default() }),
            ..EngineConfig::default()
        };
        let one = sweep(&suite, &EngineConfig { threads: 1, ..base.clone() });
        let four = sweep(&suite, &EngineConfig { threads: 4, ..base.clone() });
        let again = sweep(&suite, &EngineConfig { threads: 4, ..base });
        assert_eq!(one.total_jobs(), four.total_jobs());
        for ((a, b), c) in one.jobs.iter().zip(&four.jobs).zip(&again.jobs) {
            assert_eq!(a.semantic(), b.semantic(), "reordered sweep depends on thread count");
            assert_eq!(a.semantic(), c.semantic(), "reordered sweep is not rerun-stable");
        }
    }

    /// The deterministic counters of a sweep's registry snapshot, by name.
    fn counter_map(registry: &obs::Registry) -> std::collections::BTreeMap<String, u64> {
        registry.snapshot().counters.into_iter().collect()
    }

    #[test]
    fn obs_counters_are_complete_and_monotone_across_sweeps() {
        let suite = Suite::smoke();
        let registry = Arc::new(obs::Registry::new());
        let config = EngineConfig {
            threads: 2,
            obs: Some(Arc::clone(&registry)),
            ..EngineConfig::default()
        };
        let report = sweep(&suite, &config);

        let after_one = counter_map(&registry);
        assert_eq!(after_one["engine.jobs"], report.total_jobs() as u64);
        assert_eq!(after_one["engine.sweeps"], 1);
        assert!(after_one["engine.quotient_nanos"] > 0);
        assert!(after_one["engine.verify_nanos"] > 0);
        let latency = registry.histogram("engine.job_micros").snapshot();
        assert_eq!(latency.count, report.total_jobs() as u64);
        assert_eq!(report.job_latency.count, report.total_jobs() as u64);
        assert!(latency.quantile(0.5) <= latency.quantile(0.99));

        // A second sweep into the same registry only ever increases counters.
        let report2 = sweep(&suite, &config);
        let after_two = counter_map(&registry);
        for (name, value) in &after_one {
            assert!(
                after_two[name] >= *value,
                "counter {name} went backwards: {} < {value}",
                after_two[name]
            );
        }
        assert_eq!(after_two["engine.jobs"], (report.total_jobs() + report2.total_jobs()) as u64);
    }

    #[test]
    fn obs_bdd_counters_are_thread_count_invariant() {
        // The private-manager backend merges per-job deltas, and the job set
        // is fixed — so every BDD work counter (unlike wall-clock timers)
        // must be bit-identical at 1 and 8 threads.
        let suite = Suite::smoke();
        // `unique_rehashes` and `unique_probe_steps` are excluded: `clear()`
        // keeps subtable capacity so a manager's load factor depends on which
        // jobs its worker previously ran — capacity-derived counters are
        // observability data, not semantic work, and may differ per schedule.
        let deterministic = |registry: &obs::Registry| {
            counter_map(registry)
                .into_iter()
                .filter(|(name, _)| {
                    (name.starts_with("bdd.mgr.")
                        && !name.ends_with("unique_rehashes")
                        && !name.ends_with("unique_probe_steps"))
                        || name == "engine.jobs"
                })
                .collect::<Vec<_>>()
        };
        let reg1 = Arc::new(obs::Registry::new());
        let reg8 = Arc::new(obs::Registry::new());
        let base = EngineConfig { backend: Backend::Bdd, ..EngineConfig::default() };
        let one = sweep(
            &suite,
            &EngineConfig { threads: 1, obs: Some(Arc::clone(&reg1)), ..base.clone() },
        );
        let eight =
            sweep(&suite, &EngineConfig { threads: 8, obs: Some(Arc::clone(&reg8)), ..base });
        let counters1 = deterministic(&reg1);
        assert_eq!(counters1, deterministic(&reg8));
        assert!(counters1.iter().any(|(n, v)| n == "bdd.mgr.unique_lookups" && *v > 0));
        assert!(
            counter_map(&reg1)["bdd.mgr.unique_probe_steps"] > 0,
            "probe-chain lengths must be counted"
        );
        // And attaching a registry never changes results.
        let plain =
            sweep(&suite, &EngineConfig { backend: Backend::Bdd, ..EngineConfig::default() });
        for (a, b) in one.jobs.iter().zip(&eight.jobs) {
            assert_eq!(a.semantic(), b.semantic());
        }
        for (a, b) in plain.jobs.iter().zip(&one.jobs) {
            assert_eq!(a.semantic(), b.semantic(), "metrics influenced results");
        }
    }

    #[test]
    fn obs_shared_backend_records_worker_and_store_counters() {
        let suite = Suite::smoke();
        let registry = Arc::new(obs::Registry::new());
        let config = EngineConfig {
            backend: Backend::BddShared,
            threads: 4,
            obs: Some(Arc::clone(&registry)),
            ..EngineConfig::default()
        };
        let report = sweep(&suite, &config);
        let counters = counter_map(&registry);
        assert!(counters["bdd.worker.unique_lookups"] > 0);
        assert!(counters["bdd.shared.lock_acquires"] > 0, "every fresh node takes the shard lock");
        assert!(counters.contains_key("bdd.shared.lock_contended"));
        let snapshot = registry.snapshot();
        let nodes = snapshot
            .gauges
            .iter()
            .find(|(name, _)| name == "bdd.shared.nodes")
            .expect("store size gauge");
        assert_eq!(nodes.1.current, report.shared_nodes);
    }

    #[test]
    fn obs_synthesis_sweep_records_phase_counters() {
        let suite = Suite::smoke();
        let registry = Arc::new(obs::Registry::new());
        let config = SynthesisConfig {
            threads: 2,
            max_inputs: 6,
            obs: Some(Arc::clone(&registry)),
            ..SynthesisConfig::default()
        };
        let report = sweep_synthesis(&suite, &config);
        let counters = counter_map(&registry);
        assert_eq!(counters["engine.synthesis_jobs"], report.total_jobs() as u64);
        assert!(counters["engine.synthesis_nanos"] > 0);
        let latency = registry.histogram("engine.synthesis_job_micros").snapshot();
        assert_eq!(latency.count, report.total_jobs() as u64);
    }
}
