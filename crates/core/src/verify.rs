//! Executable versions of the paper's Lemmas 1–5 (correctness of the
//! decomposition) and Corollaries 1–4 (maximality of the quotient's
//! flexibility), on dense truth tables and on BDDs.

use bdd::{Bdd, BddOps};
use boolfunc::{Isf, TruthTable};

use crate::operator::BinaryOp;

/// Checks Lemmas 1–5: `f = g op h` holds for **every** completion of the
/// incompletely specified quotient `h`, on every care minterm of `f`.
///
/// # Panics
///
/// Panics if the arities differ.
///
/// ```rust
/// use bidecomp::{full_quotient, verify_decomposition, BinaryOp};
/// use boolfunc::{Cover, Isf};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;
/// let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();
/// let h = full_quotient(&f, &g, BinaryOp::And)?;
/// assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
/// # Ok(())
/// # }
/// ```
pub fn verify_decomposition(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> bool {
    verify_decomposition_sets(f, g, h.on(), h.dc(), op)
}

/// [`verify_decomposition`] on a quotient given as raw `(on, dc)` tables
/// (e.g. a [`crate::QuotientSets`] that was never packaged into an [`Isf`]).
///
/// The check runs word-parallel over the packed truth tables: for each
/// 64-minterm word it evaluates `g op 0` and `g op 1` with
/// [`BinaryOp::apply_words`] and flags any care minterm of `f` where a value
/// `h` is allowed to take disagrees with `f`. No memory is allocated.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn verify_decomposition_sets(
    f: &Isf,
    g: &TruthTable,
    h_on: &TruthTable,
    h_dc: &TruthTable,
    op: BinaryOp,
) -> bool {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch between f and g");
    assert_eq!(f.num_vars(), h_on.num_vars(), "arity mismatch between f and h_on");
    assert_eq!(f.num_vars(), h_dc.num_vars(), "arity mismatch between f and h_dc");
    let fw = f.on().as_words();
    let dw = f.dc().as_words();
    let gw = g.as_words();
    let hw = h_on.as_words();
    let hd = h_dc.as_words();
    let tail = f.on().tail_mask();
    let last = fw.len() - 1;
    for i in 0..fw.len() {
        let mask = if i == last { tail } else { u64::MAX };
        let care = !dw[i];
        let with_h1 = op.apply_words(gw[i], u64::MAX);
        let with_h0 = op.apply_words(gw[i], 0);
        // h may be 1 on on ∪ dc, and may be 0 everywhere outside the on-set.
        let h_may_be_1 = hw[i] | hd[i];
        let h_may_be_0 = !hw[i];
        let bad = care & (((with_h1 ^ fw[i]) & h_may_be_1) | ((with_h0 ^ fw[i]) & h_may_be_0));
        if bad & mask != 0 {
            return false;
        }
    }
    true
}

/// Checks Corollaries 1–4: `h` is the quotient with the *smallest on-set and
/// the largest dc-set*, i.e. every specified minterm of `h` is genuinely
/// forced by the decomposition and every don't-care is genuinely free.
///
/// Together with [`verify_decomposition`] this pins `h` down uniquely: it must
/// coincide with the canonical quotient on every minterm.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn verify_maximal_flexibility(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> bool {
    verify_maximal_flexibility_sets(f, g, h.on(), h.dc(), op)
}

/// [`verify_maximal_flexibility`] on a quotient given as raw `(on, dc)`
/// tables, evaluated word-parallel without allocating.
///
/// For every word the forced value of `h` is derived from `g op 0` / `g op 1`
/// versus `f`; `h_on` must equal the forced-to-1 set exactly and `h_dc` the
/// genuinely-free set exactly. A care minterm where neither value of `h`
/// realizes `f` (invalid divisor) vacuously violates maximality.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn verify_maximal_flexibility_sets(
    f: &Isf,
    g: &TruthTable,
    h_on: &TruthTable,
    h_dc: &TruthTable,
    op: BinaryOp,
) -> bool {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch between f and g");
    assert_eq!(f.num_vars(), h_on.num_vars(), "arity mismatch between f and h_on");
    assert_eq!(f.num_vars(), h_dc.num_vars(), "arity mismatch between f and h_dc");
    let fw = f.on().as_words();
    let dw = f.dc().as_words();
    let gw = g.as_words();
    let hw = h_on.as_words();
    let hd = h_dc.as_words();
    let tail = f.on().tail_mask();
    let last = fw.len() - 1;
    for i in 0..fw.len() {
        let mask = if i == last { tail } else { u64::MAX };
        let care = !dw[i];
        let ok_with_0 = !(op.apply_words(gw[i], 0) ^ fw[i]);
        let ok_with_1 = !(op.apply_words(gw[i], u64::MAX) ^ fw[i]);
        if care & !ok_with_0 & !ok_with_1 & mask != 0 {
            return false;
        }
        let forced_true = care & !ok_with_0 & ok_with_1;
        let free = !care | (ok_with_0 & ok_with_1);
        if ((hw[i] ^ forced_true) | (hd[i] ^ free)) & mask != 0 {
            return false;
        }
    }
    true
}

/// `g op c` for a constant `c`, as a BDD: always one of
/// `{0, 1, g, ¬g}`, depending on the operator's two-point restriction.
fn op_with_const<M: BddOps>(mgr: &mut M, op: BinaryOp, g: Bdd, h: bool) -> Bdd {
    match (op.apply(false, h), op.apply(true, h)) {
        (false, false) => mgr.zero(),
        (false, true) => g,
        (true, false) => mgr.not(g),
        (true, true) => mgr.one(),
    }
}

/// [`verify_decomposition`] on the BDD backend: Lemmas 1–5 checked
/// symbolically, with `f` and `h` given as `(on, dc)` BDD pairs in `mgr`.
///
/// The check builds the set of care minterms on which some allowed value of
/// `h` fails to realize `f` and tests it for emptiness — no enumeration, so
/// it runs at arities where `2^n` bits do not fit in memory.
pub fn verify_decomposition_bdd<M: BddOps>(
    mgr: &mut M,
    f_on: Bdd,
    f_dc: Bdd,
    g: Bdd,
    h_on: Bdd,
    h_dc: Bdd,
    op: BinaryOp,
) -> bool {
    // h may be 1 on h_on ∪ h_dc; wherever it may be 1, g op 1 must match f.
    let with_h1 = op_with_const(mgr, op, g, true);
    let wrong1 = mgr.xor(with_h1, f_on);
    let h_may_be_1 = mgr.or(h_on, h_dc);
    let bad1 = mgr.and(wrong1, h_may_be_1);
    let bad1_care = mgr.diff(bad1, f_dc);
    if !mgr.is_zero(bad1_care) {
        return false;
    }
    // h may be 0 everywhere outside h_on.
    let with_h0 = op_with_const(mgr, op, g, false);
    let wrong0 = mgr.xor(with_h0, f_on);
    let bad0 = mgr.diff(wrong0, h_on);
    let bad0_care = mgr.diff(bad0, f_dc);
    mgr.is_zero(bad0_care)
}

/// [`verify_maximal_flexibility`] on the BDD backend: Corollaries 1–4
/// checked symbolically.
///
/// Canonicity of ROBDDs makes the final comparison O(1): the forced-to-1 set
/// and the genuinely-free set are built as BDDs and must be *pointer-equal*
/// to `h_on` and `h_dc` respectively.
pub fn verify_maximal_flexibility_bdd<M: BddOps>(
    mgr: &mut M,
    f_on: Bdd,
    f_dc: Bdd,
    g: Bdd,
    h_on: Bdd,
    h_dc: Bdd,
    op: BinaryOp,
) -> bool {
    let with_h0 = op_with_const(mgr, op, g, false);
    let with_h1 = op_with_const(mgr, op, g, true);
    let ok0 = mgr.xnor(with_h0, f_on);
    let ok1 = mgr.xnor(with_h1, f_on);
    // A care minterm where neither value of h realizes f: invalid divisor.
    let neither = mgr.nor(ok0, ok1);
    let invalid = mgr.diff(neither, f_dc);
    if !mgr.is_zero(invalid) {
        return false;
    }
    // Forced-to-1: care minterms where only h = 1 works.
    let only1 = mgr.diff(ok1, ok0);
    let forced_true = mgr.diff(only1, f_dc);
    if h_on != forced_true {
        return false;
    }
    // Free: don't-cares of f, plus care minterms where both values work.
    let both = mgr.and(ok0, ok1);
    let free = mgr.or(f_dc, both);
    h_dc == free
}

/// The canonical full quotient computed minterm-by-minterm from the defining
/// property (rather than from the closed-form expressions of Table II). Used
/// as an independent oracle in tests and available to callers who want the
/// quotient for a divisor that does not satisfy the Table II side conditions
/// everywhere.
///
/// Returns `None` if for some care minterm neither value of `h` realizes `f`
/// (which happens exactly when `g` is not a valid divisor for `op`).
pub fn canonical_quotient(f: &Isf, g: &TruthTable, op: BinaryOp) -> Option<Isf> {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch between f and g");
    let n = f.num_vars();
    let mut on = TruthTable::zero(n);
    let mut dc = TruthTable::zero(n);
    for m in 0..(1u64 << n) {
        let gv = g.get(m);
        match f.value(m) {
            None => dc.set(m, true),
            Some(fv) => {
                let ok_with_0 = op.apply(gv, false) == fv;
                let ok_with_1 = op.apply(gv, true) == fv;
                match (ok_with_0, ok_with_1) {
                    (true, true) => dc.set(m, true),
                    (false, true) => on.set(m, true),
                    (true, false) => {}
                    (false, false) => return None,
                }
            }
        }
    }
    Some(Isf::new(on, dc).expect("on and dc are disjoint by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quotient::full_quotient;
    use boolfunc::Cover;

    fn fig1() -> (Isf, TruthTable) {
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        (f, g)
    }

    #[test]
    fn fig1_quotient_verifies_and_any_tampering_breaks_it() {
        let (f, g) = fig1();
        let h = full_quotient(&f, &g, BinaryOp::And).unwrap();
        assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
        assert!(verify_maximal_flexibility(&f, &g, &h, BinaryOp::And));

        // Moving the error minterm from off to dc breaks correctness.
        let tampered = Isf::new(h.on().clone(), h.dc() | &h.off()).unwrap();
        assert!(!verify_decomposition(&f, &g, &tampered, BinaryOp::And));

        // Declaring an extra on-set minterm keeps correctness but loses
        // maximality.
        let extra_on = {
            let mut on = h.on().clone();
            let spare = h.dc().ones().next().unwrap();
            on.set(spare, true);
            Isf::new(
                on,
                h.dc().difference(&TruthTable::from_fn(4, |m| m == h.dc().ones().next().unwrap())),
            )
            .unwrap()
        };
        assert!(verify_decomposition(&f, &g, &extra_on, BinaryOp::And));
        assert!(!verify_maximal_flexibility(&f, &g, &extra_on, BinaryOp::And));
    }

    #[test]
    fn canonical_quotient_agrees_with_table_ii() {
        let (f, g) = fig1();
        for op in [BinaryOp::And, BinaryOp::NonImplication, BinaryOp::Xor, BinaryOp::Xnor] {
            let canonical = canonical_quotient(&f, &g, op).unwrap();
            let table = full_quotient(&f, &g, op).unwrap();
            assert_eq!(canonical.on(), table.on(), "{op}: on-sets differ");
            assert_eq!(canonical.dc(), table.dc(), "{op}: dc-sets differ");
        }
    }

    #[test]
    fn canonical_quotient_detects_invalid_divisors() {
        let (f, g) = fig1();
        // g is an over-approximation: no quotient exists for OR.
        assert!(canonical_quotient(&f, &g, BinaryOp::Or).is_none());
        assert!(canonical_quotient(&f, &g, BinaryOp::And).is_some());
    }

    #[test]
    fn trivial_decompositions_of_the_introduction() {
        // g0 = f, h0 = 1  and  gn = 1, hn = f (the endpoints of the sequence
        // described in Section I for the AND operator).
        let (f, _) = fig1();
        let one = TruthTable::one(4);
        let h_for_g_equals_f = full_quotient(&f, f.on(), BinaryOp::And).unwrap();
        assert!(h_for_g_equals_f.is_completion(&one));
        let h_for_g_equals_one = full_quotient(&f, &one, BinaryOp::And).unwrap();
        assert_eq!(h_for_g_equals_one.on(), f.on());
        assert_eq!(&h_for_g_equals_one.off(), &f.off());
    }

    /// The pre-word-level implementation of [`verify_decomposition`], kept as
    /// a test oracle.
    fn verify_decomposition_oracle(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> bool {
        for m in 0..(1u64 << f.num_vars()) {
            let Some(fv) = f.value(m) else { continue };
            let gv = g.get(m);
            let allowed: &[bool] = match h.value(m) {
                Some(true) => &[true],
                Some(false) => &[false],
                None => &[false, true],
            };
            if allowed.iter().any(|&hv| op.apply(gv, hv) != fv) {
                return false;
            }
        }
        true
    }

    /// The pre-word-level implementation of [`verify_maximal_flexibility`].
    fn verify_maximal_flexibility_oracle(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> bool {
        for m in 0..(1u64 << f.num_vars()) {
            let gv = g.get(m);
            let forced = match f.value(m) {
                None => None,
                Some(fv) => {
                    let ok_with_0 = op.apply(gv, false) == fv;
                    let ok_with_1 = op.apply(gv, true) == fv;
                    match (ok_with_0, ok_with_1) {
                        (true, true) => None,
                        (false, true) => Some(true),
                        (true, false) => Some(false),
                        (false, false) => return false,
                    }
                }
            };
            if h.value(m) != forced {
                return false;
            }
        }
        true
    }

    #[test]
    fn word_level_verifiers_agree_with_the_minterm_oracle() {
        // Deterministic sweep over random (f, g, h) triples — including many
        // h that are NOT valid quotients — on arities that exercise partial
        // and multi-word tables.
        let mut rng = benchmarks::DetRng::seed_from_u64(0x5EED);
        let mut next = move || rng.next_u64();
        for case in 0..64 {
            let n = [3, 5, 6, 7][case % 4];
            let f_dc = TruthTable::from_words(n, &mut next);
            let f_on = TruthTable::from_words(n, &mut next).difference(&f_dc);
            let f = Isf::new(f_on, f_dc).unwrap();
            let g = TruthTable::from_words(n, &mut next);
            let h_dc = TruthTable::from_words(n, &mut next);
            let h_on = TruthTable::from_words(n, &mut next).difference(&h_dc);
            let h = Isf::new(h_on, h_dc).unwrap();
            for op in BinaryOp::all() {
                assert_eq!(
                    verify_decomposition(&f, &g, &h, op),
                    verify_decomposition_oracle(&f, &g, &h, op),
                    "case {case}, {op}: verify_decomposition"
                );
                assert_eq!(
                    verify_maximal_flexibility(&f, &g, &h, op),
                    verify_maximal_flexibility_oracle(&f, &g, &h, op),
                    "case {case}, {op}: verify_maximal_flexibility"
                );
                // The true quotient must still pass both word-level checks.
                if let Some(q) = canonical_quotient(&f, &g, op) {
                    assert!(verify_decomposition(&f, &g, &q, op), "case {case}, {op}");
                    assert!(verify_maximal_flexibility(&f, &g, &q, op), "case {case}, {op}");
                }
            }
        }
    }

    #[test]
    fn xor_quotient_is_the_error_function() {
        let (f, g) = fig1();
        let h = full_quotient(&f, &g, BinaryOp::Xor).unwrap();
        // h_on must be exactly the set of care minterms where f and g differ.
        let expected = &(f.on() ^ &g) & &f.care();
        assert_eq!(h.on(), &expected);
        assert_eq!(h.dc(), f.dc());
    }
}
