//! Executable versions of the paper's Lemmas 1–5 (correctness of the
//! decomposition) and Corollaries 1–4 (maximality of the quotient's
//! flexibility).

use boolfunc::{Isf, TruthTable};

use crate::operator::BinaryOp;

/// Checks Lemmas 1–5: `f = g op h` holds for **every** completion of the
/// incompletely specified quotient `h`, on every care minterm of `f`.
///
/// # Panics
///
/// Panics if the arities differ.
///
/// ```rust
/// use bidecomp::{full_quotient, verify_decomposition, BinaryOp};
/// use boolfunc::{Cover, Isf};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;
/// let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();
/// let h = full_quotient(&f, &g, BinaryOp::And)?;
/// assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
/// # Ok(())
/// # }
/// ```
pub fn verify_decomposition(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> bool {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch between f and g");
    assert_eq!(f.num_vars(), h.num_vars(), "arity mismatch between f and h");
    for m in 0..(1u64 << f.num_vars()) {
        let Some(fv) = f.value(m) else { continue };
        let gv = g.get(m);
        let allowed: &[bool] = match h.value(m) {
            Some(true) => &[true],
            Some(false) => &[false],
            None => &[false, true],
        };
        if allowed.iter().any(|&hv| op.apply(gv, hv) != fv) {
            return false;
        }
    }
    true
}

/// Checks Corollaries 1–4: `h` is the quotient with the *smallest on-set and
/// the largest dc-set*, i.e. every specified minterm of `h` is genuinely
/// forced by the decomposition and every don't-care is genuinely free.
///
/// Together with [`verify_decomposition`] this pins `h` down uniquely: it must
/// coincide with the canonical quotient on every minterm.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn verify_maximal_flexibility(f: &Isf, g: &TruthTable, h: &Isf, op: BinaryOp) -> bool {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch between f and g");
    assert_eq!(f.num_vars(), h.num_vars(), "arity mismatch between f and h");
    for m in 0..(1u64 << f.num_vars()) {
        let gv = g.get(m);
        let forced = match f.value(m) {
            // On a don't-care of f nothing is forced: h must be free there.
            None => None,
            Some(fv) => {
                let ok_with_0 = op.apply(gv, false) == fv;
                let ok_with_1 = op.apply(gv, true) == fv;
                match (ok_with_0, ok_with_1) {
                    (true, true) => None,
                    (false, true) => Some(true),
                    (true, false) => Some(false),
                    // Neither value works: no quotient exists (invalid divisor);
                    // maximality is vacuously violated.
                    (false, false) => return false,
                }
            }
        };
        if h.value(m) != forced {
            return false;
        }
    }
    true
}

/// The canonical full quotient computed minterm-by-minterm from the defining
/// property (rather than from the closed-form expressions of Table II). Used
/// as an independent oracle in tests and available to callers who want the
/// quotient for a divisor that does not satisfy the Table II side conditions
/// everywhere.
///
/// Returns `None` if for some care minterm neither value of `h` realizes `f`
/// (which happens exactly when `g` is not a valid divisor for `op`).
pub fn canonical_quotient(f: &Isf, g: &TruthTable, op: BinaryOp) -> Option<Isf> {
    assert_eq!(f.num_vars(), g.num_vars(), "arity mismatch between f and g");
    let n = f.num_vars();
    let mut on = TruthTable::zero(n);
    let mut dc = TruthTable::zero(n);
    for m in 0..(1u64 << n) {
        let gv = g.get(m);
        match f.value(m) {
            None => dc.set(m, true),
            Some(fv) => {
                let ok_with_0 = op.apply(gv, false) == fv;
                let ok_with_1 = op.apply(gv, true) == fv;
                match (ok_with_0, ok_with_1) {
                    (true, true) => dc.set(m, true),
                    (false, true) => on.set(m, true),
                    (true, false) => {}
                    (false, false) => return None,
                }
            }
        }
    }
    Some(Isf::new(on, dc).expect("on and dc are disjoint by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quotient::full_quotient;
    use boolfunc::Cover;

    fn fig1() -> (Isf, TruthTable) {
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        (f, g)
    }

    #[test]
    fn fig1_quotient_verifies_and_any_tampering_breaks_it() {
        let (f, g) = fig1();
        let h = full_quotient(&f, &g, BinaryOp::And).unwrap();
        assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
        assert!(verify_maximal_flexibility(&f, &g, &h, BinaryOp::And));

        // Moving the error minterm from off to dc breaks correctness.
        let tampered = Isf::new(h.on().clone(), h.dc() | &h.off()).unwrap();
        assert!(!verify_decomposition(&f, &g, &tampered, BinaryOp::And));

        // Declaring an extra on-set minterm keeps correctness but loses
        // maximality.
        let extra_on = {
            let mut on = h.on().clone();
            let spare = h.dc().ones().next().unwrap();
            on.set(spare, true);
            Isf::new(
                on,
                h.dc().difference(&TruthTable::from_fn(4, |m| m == h.dc().ones().next().unwrap())),
            )
            .unwrap()
        };
        assert!(verify_decomposition(&f, &g, &extra_on, BinaryOp::And));
        assert!(!verify_maximal_flexibility(&f, &g, &extra_on, BinaryOp::And));
    }

    #[test]
    fn canonical_quotient_agrees_with_table_ii() {
        let (f, g) = fig1();
        for op in [BinaryOp::And, BinaryOp::NonImplication, BinaryOp::Xor, BinaryOp::Xnor] {
            let canonical = canonical_quotient(&f, &g, op).unwrap();
            let table = full_quotient(&f, &g, op).unwrap();
            assert_eq!(canonical.on(), table.on(), "{op}: on-sets differ");
            assert_eq!(canonical.dc(), table.dc(), "{op}: dc-sets differ");
        }
    }

    #[test]
    fn canonical_quotient_detects_invalid_divisors() {
        let (f, g) = fig1();
        // g is an over-approximation: no quotient exists for OR.
        assert!(canonical_quotient(&f, &g, BinaryOp::Or).is_none());
        assert!(canonical_quotient(&f, &g, BinaryOp::And).is_some());
    }

    #[test]
    fn trivial_decompositions_of_the_introduction() {
        // g0 = f, h0 = 1  and  gn = 1, hn = f (the endpoints of the sequence
        // described in Section I for the AND operator).
        let (f, _) = fig1();
        let one = TruthTable::one(4);
        let h_for_g_equals_f = full_quotient(&f, f.on(), BinaryOp::And).unwrap();
        assert!(h_for_g_equals_f.is_completion(&one));
        let h_for_g_equals_one = full_quotient(&f, &one, BinaryOp::And).unwrap();
        assert_eq!(h_for_g_equals_one.on(), f.on());
        assert_eq!(&h_for_g_equals_one.off(), &f.off());
    }

    #[test]
    fn xor_quotient_is_the_error_function() {
        let (f, g) = fig1();
        let h = full_quotient(&f, &g, BinaryOp::Xor).unwrap();
        // h_on must be exactly the set of care minterms where f and g differ.
        let expected = &(f.on() ^ &g) & &f.care();
        assert_eq!(h.on(), &expected);
        assert_eq!(h.dc(), f.dc());
    }
}
