use std::fmt;

use crate::operator::BinaryOp;

/// Error type of the `bidecomp` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BidecompError {
    /// The dividend and divisor are defined over a different number of
    /// variables.
    ArityMismatch {
        /// Arity of the dividend `f`.
        dividend: usize,
        /// Arity of the divisor `g`.
        divisor: usize,
    },
    /// The divisor `g` is not an approximation of the kind required by the
    /// operator (Table II, column "Approximation function g").
    InvalidDivisor {
        /// The operator of the attempted bi-decomposition.
        op: BinaryOp,
        /// Human-readable description of the violated side condition.
        requirement: String,
    },
    /// A lower-level Boolean-function error (e.g. too many variables for the
    /// dense backend).
    BoolFunc(boolfunc::BoolFuncError),
}

impl fmt::Display for BidecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BidecompError::ArityMismatch { dividend, divisor } => {
                write!(f, "dividend has {dividend} variables but divisor has {divisor}")
            }
            BidecompError::InvalidDivisor { op, requirement } => {
                write!(f, "divisor is not a valid approximation for {op}: {requirement}")
            }
            BidecompError::BoolFunc(e) => write!(f, "boolean function error: {e}"),
        }
    }
}

impl std::error::Error for BidecompError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BidecompError::BoolFunc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<boolfunc::BoolFuncError> for BidecompError {
    fn from(e: boolfunc::BoolFuncError) -> Self {
        BidecompError::BoolFunc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BidecompError::ArityMismatch { dividend: 4, divisor: 5 };
        assert!(e.to_string().contains('4'));
        let inner = boolfunc::BoolFuncError::InconsistentIsf;
        let wrapped = BidecompError::from(inner);
        assert!(std::error::Error::source(&wrapped).is_some());
        let invalid = BidecompError::InvalidDivisor {
            op: BinaryOp::And,
            requirement: "f_on ⊆ g_on".into(),
        };
        assert!(invalid.to_string().contains("AND"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BidecompError>();
    }
}
