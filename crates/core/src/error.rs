use std::fmt;

use crate::operator::BinaryOp;

/// Error type of the `bidecomp` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BidecompError {
    /// The dividend and divisor are defined over a different number of
    /// variables.
    ArityMismatch {
        /// Arity of the dividend `f`.
        dividend: usize,
        /// Arity of the divisor `g`.
        divisor: usize,
    },
    /// The divisor `g` is not an approximation of the kind required by the
    /// operator (Table II, column "Approximation function g").
    InvalidDivisor {
        /// The operator of the attempted bi-decomposition.
        op: BinaryOp,
        /// Human-readable description of the violated side condition.
        requirement: String,
    },
    /// A plan with [`crate::ApproxStrategy::External`] was asked to *derive*
    /// a divisor: the external strategy records that the divisor is supplied
    /// by the caller (`decompose_with`), so there is nothing to derive and
    /// silently substituting another strategy would hide the mistake.
    MissingExternalDivisor,
    /// The computed decomposition failed the exhaustive check of Lemmas 1–5
    /// (`f = g op h` for every completion of `h`). This indicates a bug in
    /// the quotient computation, never a user error, and is surfaced instead
    /// of an `Ok` result carrying `verified: false`.
    VerificationFailed {
        /// The operator whose decomposition failed to verify.
        op: BinaryOp,
    },
    /// A lower-level Boolean-function error (e.g. too many variables for the
    /// dense backend).
    BoolFunc(boolfunc::BoolFuncError),
}

impl fmt::Display for BidecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BidecompError::ArityMismatch { dividend, divisor } => {
                write!(f, "dividend has {dividend} variables but divisor has {divisor}")
            }
            BidecompError::InvalidDivisor { op, requirement } => {
                write!(f, "divisor is not a valid approximation for {op}: {requirement}")
            }
            BidecompError::MissingExternalDivisor => {
                write!(
                    f,
                    "the External strategy needs a caller-supplied divisor; \
                     use decompose_with instead of decompose"
                )
            }
            BidecompError::VerificationFailed { op } => {
                write!(f, "the {op} decomposition failed the Lemma 1-5 verification")
            }
            BidecompError::BoolFunc(e) => write!(f, "boolean function error: {e}"),
        }
    }
}

impl std::error::Error for BidecompError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BidecompError::BoolFunc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<boolfunc::BoolFuncError> for BidecompError {
    fn from(e: boolfunc::BoolFuncError) -> Self {
        BidecompError::BoolFunc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BidecompError::ArityMismatch { dividend: 4, divisor: 5 };
        assert!(e.to_string().contains('4'));
        let inner = boolfunc::BoolFuncError::InconsistentIsf;
        let wrapped = BidecompError::from(inner);
        assert!(std::error::Error::source(&wrapped).is_some());
        let invalid = BidecompError::InvalidDivisor {
            op: BinaryOp::And,
            requirement: "f_on ⊆ g_on".into(),
        };
        assert!(invalid.to_string().contains("AND"));
        let missing = BidecompError::MissingExternalDivisor;
        assert!(missing.to_string().contains("decompose_with"));
        let unverified = BidecompError::VerificationFailed { op: BinaryOp::Xor };
        assert!(unverified.to_string().contains("XOR"));
        assert!(unverified.to_string().contains("verification"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BidecompError>();
    }
}
