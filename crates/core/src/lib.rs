//! # bidecomp
//!
//! The core contribution of *“Computing the full quotient in bi-decomposition
//! by approximation”* (Bernasconi, Ciriani, Cortadella, Villa — DATE 2020):
//! given an incompletely specified function `f`, a completely specified
//! approximation `g`, and a two-input operator `op`, compute the incompletely
//! specified quotient `h` with the **smallest on-set and the largest dc-set**
//! such that `f = g op h` for *every* completion of `h` (Table II of the
//! paper, Lemmas 1–5, Corollaries 1–4).
//!
//! On top of the quotient formulas the crate provides:
//!
//! * [`BinaryOp`] — the ten non-degenerate binary operators, grouped into
//!   AND-like, OR-like and XOR-like classes;
//! * [`ApproxKind`] / divisor validation — which kind of approximation
//!   (0→1, 1→0, 0↔1) each operator requires and whether a candidate `g`
//!   satisfies it;
//! * [`full_quotient`] / [`full_quotient_bdd`] — the quotient on dense truth
//!   tables and on BDDs (the two backends the paper's CUDD implementation
//!   collapses into one);
//! * [`verify_decomposition`] and [`verify_maximal_flexibility`] — executable
//!   versions of the lemmas and corollaries;
//! * [`Oracle`] — a third, structurally independent judge: the lemmas and
//!   corollaries compiled into CNF counterexample searches and decided by
//!   the deterministic [`sat`] solver, with rejections naming the failing
//!   lemma and a witness minterm;
//! * [`DecompositionPlan`] — the end-to-end flow of Section IV (synthesize
//!   `f` in 2-SPP, approximate, compute `h`, re-synthesize, map, report
//!   areas and gains);
//! * [`decomposition_sequence`] — the sequence of divisor/quotient pairs that
//!   shifts logic between `g` and `h` (Section I);
//! * [`engine`] — the batch decomposition engine: the full
//!   operator × instance × divisor sweep of a benchmark suite over a worker
//!   pool, with an allocation-free quotient/verify hot path
//!   ([`QuotientScratch`]) and deterministic, seed-stable reports; a second
//!   sweep kind ([`sweep_synthesis`]) fans the recursive synthesizer over a
//!   suite on the same pool;
//! * [`cache`] — the [`QuotientCache`] trait: pluggable memoization of
//!   full-quotient results (sound because the full quotient is unique), with
//!   hooks in both the engine and the recursive synthesizer; the production
//!   NPN-canonical implementation is `service::NpnCache`;
//! * [`recursive`] — the recursive synthesis engine: cost-driven multi-level
//!   bi-decomposition with a configurable `(operator, strategy)` portfolio,
//!   a [`techmap::Network`] emitter and a [`DecompositionTree`] report, every
//!   network exhaustively verified against `f`'s care set.
//!
//! ```rust
//! use bidecomp::{full_quotient, verify_decomposition, BinaryOp};
//! use boolfunc::{Cover, Isf};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fig. 1 of the paper: f = x0 x1 x3 + x1 x2 x3, g = x1 x3.
//! let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;
//! let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();
//! let h = full_quotient(&f, &g, BinaryOp::And)?;
//! assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
//! // h can be realised as x0 + x2 thanks to its large dc-set.
//! assert_eq!(h.on(), f.on());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximation;
pub mod cache;
pub mod decompose;
pub mod engine;
mod error;
pub mod flexibility;
pub mod operator;
pub mod oracle;
pub mod quotient;
pub mod recursive;
pub mod report;
pub mod sequence;
pub mod verify;

pub use approximation::{
    classify_approximation, is_valid_divisor, is_valid_divisor_bdd, ApproxKind, ApproximationStats,
};
pub use cache::{cached_full_quotient, QuotientCache, SharedQuotientCache};
pub use decompose::{
    derive_strategy_divisor, ApproxStrategy, BiDecomposition, DecompositionPlan, Quotient,
};
pub use engine::{
    run_pool, seeded_divisor, seeded_divisor_bdd, sweep, sweep_synthesis, try_run_pool, Backend,
    EngineConfig, JobPanic, JobResult, OperatorStats, OracleConfig, SweepReport, SynthesisConfig,
    SynthesisJobResult, SynthesisReport,
};
pub use error::BidecompError;
pub use flexibility::FlexibilityReport;
pub use operator::{BinaryOp, OperatorClass};
pub use oracle::{correctness_lemma, flexibility_corollary, FailedLemma, Oracle, OracleFailure};
pub use quotient::{
    full_quotient, full_quotient_bdd, quotient_off_bdd, quotient_sets, table2_row, DcTerm,
    QuotientScratch, QuotientSets, Table2Row,
};
pub use recursive::{
    verify_network, DecompositionTree, LeafKind, RecursiveConfig, RecursiveSynthesis,
    RecursiveSynthesizer,
};
pub use report::{BenchmarkRow, TableReport};
pub use sequence::decomposition_sequence;
pub use verify::{
    verify_decomposition, verify_decomposition_bdd, verify_decomposition_sets,
    verify_maximal_flexibility, verify_maximal_flexibility_bdd, verify_maximal_flexibility_sets,
};
