//! The end-to-end decomposition flow of Section IV: synthesize `f` in 2-SPP
//! form, derive an approximation `g`, compute the full quotient `h`,
//! re-synthesize both in 2-SPP, and report mapped areas and gains.

use boolfunc::{Isf, TruthTable};
use spp::{BoundedExpansion, FullExpansion, SppForm, SppSynthesizer};
use techmap::{AreaModel, CombineOp};

use crate::approximation::{classify_approximation, ApproximationStats};
use crate::engine::seeded_divisor;
use crate::error::BidecompError;
use crate::operator::BinaryOp;
use crate::oracle::{Oracle, OracleFailure};
use crate::quotient::full_quotient;
use crate::verify::verify_decomposition;

/// Re-export of the quotient ISF type under the name the paper uses.
pub type Quotient = Isf;

/// How the divisor `g` is derived from `f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxStrategy {
    /// The paper's strategy (Section IV-A): expand every pseudoproduct of the
    /// initial 2-SPP cover, move the touched off-set minterms to the dc-set
    /// and re-synthesize. The resulting error rate depends on the benchmark.
    FullExpansion,
    /// The error-rate-bounded strategy of reference \[2\]: greedy expansion
    /// while the error rate stays below the given fraction.
    Bounded {
        /// Maximum fraction of the 2^n minterms that may be complemented.
        max_error_rate: f64,
    },
    /// A seed-stable noise divisor from [`crate::engine::seeded_divisor`]:
    /// valid for the operator's Table II side condition by construction, but
    /// structure-free. Useful as a portfolio baseline and for seed-stability
    /// tests; it rarely wins an area comparison.
    Seeded {
        /// The noise seed fed to the divisor derivation.
        seed: u64,
    },
    /// Use an externally supplied divisor (the plan's `decompose_with` entry
    /// point). Asking a plan with this strategy to *derive* a divisor is an
    /// error ([`BidecompError::MissingExternalDivisor`]).
    External,
}

/// The complete result of one bi-decomposition experiment on one function.
#[derive(Debug, Clone)]
pub struct BiDecomposition {
    /// The operator used.
    pub op: BinaryOp,
    /// 2-SPP form of the original function `f`.
    pub f_form: SppForm,
    /// 2-SPP form of the divisor `g`.
    pub g_form: SppForm,
    /// The divisor as a completely specified function.
    pub g_table: TruthTable,
    /// The full quotient (maximal-flexibility ISF) of Table II.
    pub h: Quotient,
    /// 2-SPP form chosen for the quotient.
    pub h_form: SppForm,
    /// Error statistics of the approximation `g` with respect to `f`.
    pub approximation: ApproximationStats,
    /// Mapped area of the 2-SPP form of `f`.
    pub area_f: f64,
    /// Mapped area of the 2-SPP form of `g`.
    pub area_g: f64,
    /// Mapped area of the 2-SPP form of `h`.
    pub area_h: f64,
    /// Mapped area of the bi-decomposed form `g op h`.
    pub area_bidecomposition: f64,
    /// `true` if [`verify_decomposition`] holds. Kept for reporting: a
    /// failed verification never reaches this struct, it is surfaced as
    /// [`BidecompError::VerificationFailed`] instead, so on an `Ok` result
    /// this field is always `true`.
    pub verified: bool,
}

impl BiDecomposition {
    /// The paper's "Gain (%)" column: `(area_f − area_bidecomposition) / area_f`.
    pub fn gain_percent(&self) -> f64 {
        if self.area_f == 0.0 {
            0.0
        } else {
            (self.area_f - self.area_bidecomposition) / self.area_f * 100.0
        }
    }

    /// The paper's "%(Area f − Area g)/Area f" column.
    pub fn divisor_reduction_percent(&self) -> f64 {
        if self.area_f == 0.0 {
            0.0
        } else {
            (self.area_f - self.area_g) / self.area_f * 100.0
        }
    }

    /// Error rate in percent (the "%Errors" column).
    pub fn error_percent(&self) -> f64 {
        self.approximation.error_rate * 100.0
    }

    /// Replays this finished decomposition through the independent SAT
    /// [`Oracle`]: the Table II side condition, Lemmas 1–5, and
    /// Corollaries 1–4, against the original dividend `f`.
    ///
    /// The flow already verified the word-parallel lemmas before returning
    /// this struct, so a rejection here means the dense verifiers and the
    /// oracle disagree — a cross-backend bug worth a minimized report.
    ///
    /// # Errors
    ///
    /// Returns the first [`OracleFailure`], naming the failing lemma and a
    /// witness minterm.
    pub fn oracle_audit(&self, f: &Isf) -> Result<(), OracleFailure> {
        Oracle::check(f, &self.g_table, &self.h, self.op)
    }
}

/// A reusable description of how to run a bi-decomposition: operator,
/// approximation strategy, synthesis and area options.
///
/// ```rust
/// use bidecomp::{ApproxStrategy, BinaryOp, DecompositionPlan};
/// use boolfunc::Isf;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = Isf::from_cover_str(4, &["1-10", "1-01", "-111", "-100"], &[])?;
/// let plan = DecompositionPlan::new(BinaryOp::And, ApproxStrategy::FullExpansion);
/// let result = plan.decompose(&f)?;
/// assert!(result.verified);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecompositionPlan {
    op: BinaryOp,
    strategy: ApproxStrategy,
    synthesizer: SppSynthesizer,
    area_model: AreaModel,
}

impl DecompositionPlan {
    /// Creates a plan for `op` using the given approximation strategy, the
    /// default 2-SPP synthesizer and the embedded mcnc-like library.
    pub fn new(op: BinaryOp, strategy: ApproxStrategy) -> Self {
        DecompositionPlan {
            op,
            strategy,
            synthesizer: SppSynthesizer::new(),
            area_model: AreaModel::mcnc(),
        }
    }

    /// Replaces the 2-SPP synthesizer.
    pub fn with_synthesizer(mut self, synthesizer: SppSynthesizer) -> Self {
        self.synthesizer = synthesizer;
        self
    }

    /// Replaces the area model.
    pub fn with_area_model(mut self, area_model: AreaModel) -> Self {
        self.area_model = area_model;
        self
    }

    /// The operator of this plan.
    pub fn op(&self) -> BinaryOp {
        self.op
    }

    /// The approximation strategy of this plan.
    pub fn strategy(&self) -> ApproxStrategy {
        self.strategy
    }

    /// Runs the full flow on `f`, deriving the divisor from the plan's
    /// approximation strategy.
    ///
    /// # Errors
    ///
    /// Returns [`BidecompError::MissingExternalDivisor`] if the plan's
    /// strategy is [`ApproxStrategy::External`] (an external divisor can only
    /// be used through [`DecompositionPlan::decompose_with`]), or an error if
    /// the derived divisor does not satisfy the side condition of Table II
    /// for the plan's operator (this cannot happen for the AND-like
    /// operators with 0→1 strategies, but the plan supports all ten
    /// operators).
    pub fn decompose(&self, f: &Isf) -> Result<BiDecomposition, BidecompError> {
        let f_form = self.synthesizer.synthesize(f);
        let g_table =
            derive_strategy_divisor(f, &f_form, self.op, self.strategy, &self.synthesizer)?;
        self.decompose_with_tables(f, f_form, g_table)
    }

    /// Runs the flow with an externally supplied completely specified divisor.
    ///
    /// # Errors
    ///
    /// Returns an error if `g` is not a valid divisor for the plan's operator.
    pub fn decompose_with(
        &self,
        f: &Isf,
        g: &TruthTable,
    ) -> Result<BiDecomposition, BidecompError> {
        let f_form = self.synthesizer.synthesize(f);
        self.decompose_with_tables(f, f_form, g.clone())
    }

    fn decompose_with_tables(
        &self,
        f: &Isf,
        f_form: SppForm,
        g_table: TruthTable,
    ) -> Result<BiDecomposition, BidecompError> {
        let h = full_quotient(f, &g_table, self.op)?;
        let g_isf = Isf::completely_specified(g_table.clone());
        let g_form = self.synthesizer.synthesize(&g_isf);
        let h_form = self.synthesizer.synthesize(&h);
        let approximation = classify_approximation(f, &g_table);

        let area_f = self.area_model.spp_area(&f_form);
        let area_g = self.area_model.spp_area(&g_form);
        let area_h = self.area_model.spp_area(&h_form);
        let area_bidecomposition =
            self.area_model.bidecomposition_area(&g_form, &h_form, combine_op(self.op));

        // A failed verification is a quotient bug, not a reportable outcome:
        // surface it as an error instead of an `Ok` the caller has to
        // remember to inspect. The `verified` field stays for reporting.
        let verified = verify_decomposition(f, &g_table, &h, self.op);
        if !verified {
            return Err(BidecompError::VerificationFailed { op: self.op });
        }

        Ok(BiDecomposition {
            op: self.op,
            f_form,
            g_form,
            g_table,
            h,
            h_form,
            approximation,
            area_f,
            area_g,
            area_h,
            area_bidecomposition,
            verified,
        })
    }
}

/// Derives the divisor a `(op, strategy)` pair asks for, reusing an already
/// synthesized 2-SPP form of `f`.
///
/// For operators that need an approximation of `f`, the 2-SPP expansion is
/// applied to `f` itself; for operators that need an approximation of the
/// complement, it is applied to `f'` and the required side is selected.
/// Table II side conditions:
///
/// * `AND`, `⇏`: over-approximate `f` → `g = approx(f)`;
/// * `OR`, `⇐`: under-approximate `f` → `g = ¬approx(f')`;
/// * `⇒`, `NAND`: over-approximate `f'` (`f_off ⊆ g`) → `g = approx(f')`;
/// * `⇍`, `NOR`: under-approximate `f'` (`g ⊆ f_off`) → `g = ¬approx(f)`;
/// * `XOR`, `XNOR`: anything goes; use `approx(f)`.
///
/// This is the derivation both [`DecompositionPlan::decompose`] and the
/// recursive synthesizer ([`crate::recursive`]) dispatch on, so the two
/// flows cannot drift apart strategy by strategy.
///
/// # Errors
///
/// Returns [`BidecompError::MissingExternalDivisor`] for
/// [`ApproxStrategy::External`]: the external strategy records that the
/// divisor is supplied by the caller, so there is nothing to derive —
/// silently substituting a [`ApproxStrategy::FullExpansion`] divisor (the
/// old behavior) would hide the mistake.
pub fn derive_strategy_divisor(
    f: &Isf,
    f_form: &SppForm,
    op: BinaryOp,
    strategy: ApproxStrategy,
    synthesizer: &SppSynthesizer,
) -> Result<TruthTable, BidecompError> {
    // The noise strategy is op-aware on its own and needs no expansion.
    if let ApproxStrategy::Seeded { seed } = strategy {
        return Ok(seeded_divisor(f, op, seed));
    }
    // Which base function must be over-approximated (0→1)?
    let complement_base = matches!(
        op,
        BinaryOp::Or | BinaryOp::ConverseImplication | BinaryOp::Implication | BinaryOp::Nand
    );
    let base = if complement_base {
        Isf::new(f.off(), f.dc().clone()).expect("off and dc are disjoint")
    } else {
        f.clone()
    };
    let base_form = if complement_base { synthesizer.synthesize(&base) } else { f_form.clone() };
    let over = match strategy {
        ApproxStrategy::FullExpansion => {
            FullExpansion::new().approximate(&base_form, &base, synthesizer).g_table
        }
        ApproxStrategy::Bounded { max_error_rate } => {
            BoundedExpansion::new(max_error_rate).approximate(&base_form, &base).g_table
        }
        ApproxStrategy::Seeded { .. } => unreachable!("handled above"),
        ApproxStrategy::External => return Err(BidecompError::MissingExternalDivisor),
    };
    Ok(match op {
        // g_on ⊆ f_on: complement the over-approximation of f' and drop
        // any don't-care minterms so the Table II side condition holds
        // strictly.
        BinaryOp::Or | BinaryOp::ConverseImplication => &(!&over) & f.on(),
        // g_on ⊆ f_off: complement the over-approximation of f.
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => &(!&over) & &f.off(),
        _ => over,
    })
}

/// Maps a semantic operator onto the structural top gate used by the area
/// model.
pub fn combine_op(op: BinaryOp) -> CombineOp {
    match op {
        BinaryOp::And => CombineOp::And,
        BinaryOp::ConverseNonImplication => CombineOp::AndNotLeft,
        BinaryOp::NonImplication => CombineOp::AndNotRight,
        BinaryOp::Nor => CombineOp::Nor,
        BinaryOp::Or => CombineOp::Or,
        BinaryOp::Implication => CombineOp::OrNotLeft,
        BinaryOp::ConverseImplication => CombineOp::OrNotRight,
        BinaryOp::Nand => CombineOp::Nand,
        BinaryOp::Xor => CombineOp::Xor,
        BinaryOp::Xnor => CombineOp::Xnor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> Isf {
        Isf::from_cover_str(4, &["1-10", "1-01", "-111", "-100"], &[]).unwrap()
    }

    #[test]
    fn and_decomposition_of_fig2_verifies() {
        let plan = DecompositionPlan::new(BinaryOp::And, ApproxStrategy::FullExpansion);
        let result = plan.decompose(&fig2()).unwrap();
        assert!(result.verified);
        assert!(result.approximation.one_to_zero == 0, "AND needs a pure 0→1 approximation");
        assert!(result.area_f > 0.0);
        assert!(result.area_g >= 0.0);
    }

    #[test]
    fn bounded_strategy_respects_the_budget() {
        let plan = DecompositionPlan::new(
            BinaryOp::NonImplication,
            ApproxStrategy::Bounded { max_error_rate: 0.15 },
        );
        let result = plan.decompose(&fig2()).unwrap();
        assert!(result.verified);
        assert!(result.approximation.error_rate <= 0.15 + 1e-9);
    }

    #[test]
    fn all_ten_operators_produce_verified_decompositions() {
        let f = fig2();
        for op in BinaryOp::all() {
            let plan = DecompositionPlan::new(op, ApproxStrategy::Bounded { max_error_rate: 0.2 });
            let result = plan.decompose(&f).unwrap_or_else(|e| panic!("{op}: {e}"));
            assert!(result.verified, "{op}: decomposition failed verification");
            result.oracle_audit(&f).unwrap_or_else(|e| panic!("{op}: oracle rejected: {e}"));
        }
    }

    #[test]
    fn external_divisor_flow() {
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = boolfunc::Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        let plan = DecompositionPlan::new(BinaryOp::And, ApproxStrategy::External);
        let result = plan.decompose_with(&f, &g).unwrap();
        assert!(result.verified);
        // The paper's Fig. 1: f needs 6 SOP literals, g·h needs 4.
        assert!(result.g_form.literal_count() <= 2);
        assert!(result.h_form.literal_count() <= 2);
        // An invalid divisor is rejected.
        let bad = boolfunc::TruthTable::zero(4);
        assert!(plan.decompose_with(&f, &bad).is_err());
    }

    #[test]
    fn external_strategy_refuses_to_derive_a_divisor() {
        // Regression: the External match arm used to fall through to
        // FullExpansion, so `decompose` silently invented a divisor instead
        // of reporting that the caller forgot to supply one.
        for op in BinaryOp::all() {
            let plan = DecompositionPlan::new(op, ApproxStrategy::External);
            let err = plan.decompose(&fig2()).unwrap_err();
            assert_eq!(err, BidecompError::MissingExternalDivisor, "{op}");
        }
        // `decompose_with` remains the entry point for external divisors.
        let plan = DecompositionPlan::new(BinaryOp::And, ApproxStrategy::External);
        let g = boolfunc::TruthTable::one(4);
        assert!(plan.decompose_with(&fig2(), &g).is_ok());
    }

    #[test]
    fn seeded_strategy_is_valid_and_reproducible_for_every_operator() {
        let f = fig2();
        for (i, op) in BinaryOp::all().into_iter().enumerate() {
            let plan =
                DecompositionPlan::new(op, ApproxStrategy::Seeded { seed: 0xBEEF ^ i as u64 });
            let a = plan.decompose(&f).unwrap_or_else(|e| panic!("{op}: {e}"));
            let b = plan.decompose(&f).unwrap();
            assert!(a.verified, "{op}");
            assert_eq!(a.g_table, b.g_table, "{op}: same seed must give the same divisor");
        }
    }

    #[test]
    fn gain_and_error_percent_formulas() {
        let plan = DecompositionPlan::new(BinaryOp::And, ApproxStrategy::FullExpansion);
        let result = plan.decompose(&fig2()).unwrap();
        let expected_gain = (result.area_f - result.area_bidecomposition) / result.area_f * 100.0;
        assert!((result.gain_percent() - expected_gain).abs() < 1e-9);
        assert!((result.error_percent() - result.approximation.error_rate * 100.0).abs() < 1e-9);
        assert!(result.divisor_reduction_percent() <= 100.0);
    }
}
