//! Pluggable memoization of full-quotient results.
//!
//! The full quotient of Table II is the *unique* maximal-flexibility ISF for
//! a given `(f, g, op)` triple (Corollaries 1–4), which makes it a perfect
//! caching target: a cache hit is guaranteed to be bit-identical to a cold
//! computation, so plugging a cache into the recursive synthesizer or the
//! batch engine never changes any reported number — it only skips work.
//!
//! The trait lives here, in `core`, so the engine and the recursive
//! synthesizer can consume a cache without depending on any particular
//! implementation; the production implementation — a lock-striped sharded
//! map keyed by NPN-canonical forms — is `service::NpnCache` in the
//! `bidecomp-service` crate, which sits *above* this one in the dependency
//! graph.

use std::fmt;
use std::sync::Arc;

use boolfunc::{Isf, TruthTable};

use crate::error::BidecompError;
use crate::operator::BinaryOp;
use crate::quotient::full_quotient;

/// A shared, thread-safe store of completed full-quotient results.
///
/// Implementations may normalize the key however they like (the service
/// crate canonicalizes `(f, g)` up to input permutation/negation and output
/// negation), but `lookup` must only ever return the exact full quotient of
/// the queried triple: because the full quotient is unique, any sound
/// normalization scheme satisfies this by construction.
///
/// A `lookup` hit also implies the divisor was valid for `op` (validity is
/// preserved by any sound normalization), so callers may skip the Table II
/// side-condition check on hits.
pub trait QuotientCache: Send + Sync + fmt::Debug {
    /// The cached full quotient of `(f, g, op)`, or `None` on a miss.
    fn lookup(&self, f: &Isf, g: &TruthTable, op: BinaryOp) -> Option<Isf>;

    /// Records the full quotient `h` of `(f, g, op)` for future lookups.
    fn store(&self, f: &Isf, g: &TruthTable, op: BinaryOp, h: &Isf);
}

/// The shared-ownership handle configuration structs carry: one cache can be
/// hit from every worker of a pool, every level of a recursion, and every
/// job of a server queue at once.
pub type SharedQuotientCache = Arc<dyn QuotientCache>;

/// [`full_quotient`] with an optional cache in front: on a hit the divisor
/// check and the Table II computation are both skipped (see
/// [`QuotientCache`] for why that is sound); on a miss the cold result is
/// stored before it is returned.
///
/// # Errors
///
/// Exactly the errors of [`full_quotient`] (only reachable on a miss).
pub fn cached_full_quotient(
    cache: Option<&dyn QuotientCache>,
    f: &Isf,
    g: &TruthTable,
    op: BinaryOp,
) -> Result<Isf, BidecompError> {
    let Some(cache) = cache else {
        return full_quotient(f, g, op);
    };
    if let Some(h) = cache.lookup(f, g, op) {
        return Ok(h);
    }
    let h = full_quotient(f, g, op)?;
    cache.store(f, g, op, &h);
    Ok(h)
}

/// A minimal exact-key [`QuotientCache`] used by the in-crate tests (the
/// NPN-canonical production cache lives in the `bidecomp-service` crate and
/// cannot be used here without a dependency cycle).
#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    use super::*;

    /// `(f_on, f_dc, g)` words plus the operator.
    type Key = (Vec<u64>, Vec<u64>, Vec<u64>, BinaryOp);
    /// `(h_on, h_dc)` words.
    type Entry = (Vec<u64>, Vec<u64>);

    /// Exact-key map cache with hit/miss counters.
    #[derive(Debug, Default)]
    pub struct MapCache {
        map: Mutex<HashMap<Key, Entry>>,
        pub hits: AtomicU64,
        pub misses: AtomicU64,
    }

    fn key(f: &Isf, g: &TruthTable, op: BinaryOp) -> Key {
        (f.on().as_words().to_vec(), f.dc().as_words().to_vec(), g.as_words().to_vec(), op)
    }

    impl QuotientCache for MapCache {
        fn lookup(&self, f: &Isf, g: &TruthTable, op: BinaryOp) -> Option<Isf> {
            let map = self.map.lock().unwrap();
            match map.get(&key(f, g, op)) {
                Some((on, dc)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let n = f.num_vars();
                    let mut on_iter = on.iter().copied();
                    let mut dc_iter = dc.iter().copied();
                    let on = TruthTable::from_words(n, || on_iter.next().unwrap());
                    let dc = TruthTable::from_words(n, || dc_iter.next().unwrap());
                    Some(Isf::new(on, dc).expect("cached sets are disjoint"))
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        }

        fn store(&self, f: &Isf, g: &TruthTable, op: BinaryOp, h: &Isf) {
            let mut map = self.map.lock().unwrap();
            map.insert(key(f, g, op), (h.on().as_words().to_vec(), h.dc().as_words().to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::MapCache;
    use super::*;
    use crate::engine::seeded_divisor;
    use std::sync::atomic::Ordering;

    #[test]
    fn cached_quotient_is_bit_identical_to_cold() {
        let cache = MapCache::default();
        let f = Isf::from_cover_str(4, &["1-10", "1-01", "-111"], &["0000"]).unwrap();
        for (i, op) in BinaryOp::all().into_iter().enumerate() {
            let g = seeded_divisor(&f, op, 0xCAFE ^ i as u64);
            let cold = full_quotient(&f, &g, op).unwrap();
            let miss = cached_full_quotient(Some(&cache), &f, &g, op).unwrap();
            let hit = cached_full_quotient(Some(&cache), &f, &g, op).unwrap();
            assert_eq!(cold, miss, "{op}: miss path must equal the cold computation");
            assert_eq!(cold, hit, "{op}: hit path must equal the cold computation");
        }
        assert_eq!(cache.hits.load(Ordering::Relaxed), 10);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn no_cache_falls_through_to_full_quotient() {
        let f = Isf::from_cover_str(3, &["11-"], &[]).unwrap();
        let g = seeded_divisor(&f, BinaryOp::And, 1);
        let h = cached_full_quotient(None, &f, &g, BinaryOp::And).unwrap();
        assert_eq!(h, full_quotient(&f, &g, BinaryOp::And).unwrap());
    }

    #[test]
    fn invalid_divisor_still_errors_through_the_cache() {
        let cache = MapCache::default();
        let f = Isf::from_cover_str(3, &["11-"], &[]).unwrap();
        let bad = TruthTable::zero(3); // AND needs f_on ⊆ g.
        assert!(cached_full_quotient(Some(&cache), &f, &bad, BinaryOp::And).is_err());
    }
}
