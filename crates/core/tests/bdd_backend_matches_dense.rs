//! Property test pinning the symbolic (BDD) backend bit-identical to the
//! dense backend: for ≥256 seeded random dividends and all ten Table I
//! operators, the seeded divisor, the three Table II quotient sets, and both
//! verification verdicts must agree exactly (compared via `to_truth_table`
//! at arities the dense backend supports).

use bdd::BddManager;
use benchmarks::DetRng;
use bidecomp::engine::{seeded_divisor, seeded_divisor_bdd};
use bidecomp::{
    full_quotient_bdd, is_valid_divisor_bdd, quotient_off_bdd, quotient_sets,
    verify_decomposition_bdd, verify_decomposition_sets, verify_maximal_flexibility_bdd,
    verify_maximal_flexibility_sets, BinaryOp,
};
use boolfunc::{Isf, TruthTable};

/// A deterministic random ISF over `n` variables (seeded word stream; the dc
/// density is moderate so all three sets are non-trivial).
fn random_isf(n: usize, rng: &mut DetRng) -> Isf {
    let dc_a = TruthTable::from_words(n, || rng.next_u64());
    let dc_b = TruthTable::from_words(n, || rng.next_u64());
    let f_dc = &dc_a & &dc_b; // density 1/4
    let f_on = TruthTable::from_words(n, || rng.next_u64()).difference(&f_dc);
    Isf::new(f_on, f_dc).expect("on and dc are disjoint by construction")
}

#[test]
fn bdd_backend_is_bit_identical_to_the_dense_backend() {
    const CASES: usize = 260;
    let arities = [3usize, 5, 6, 7, 9, 11];
    let mut checked = 0usize;
    for case in 0..CASES {
        let n = arities[case % arities.len()];
        let mut rng = DetRng::seed_from_u64(0xB1DE ^ (case as u64) << 8);
        let f = random_isf(n, &mut rng);
        let mut mgr = BddManager::new(n);
        let f_on = mgr.from_truth_table(f.on());
        let f_dc = mgr.from_truth_table(f.dc());

        for (i, op) in BinaryOp::all().into_iter().enumerate() {
            let seed = 0xD1CE_0000 ^ (case as u64) << 16 ^ i as u64;

            // Divisor: the symbolic algebra fed the same noise words must
            // reproduce the dense divisor exactly.
            let g_dense = seeded_divisor(&f, op, seed);
            let noise = {
                let mut noise_rng = DetRng::seed_from_u64(seed);
                let tt = TruthTable::from_words(n, || noise_rng.next_u64());
                mgr.from_truth_table(&tt)
            };
            let g = seeded_divisor_bdd(&mut mgr, f_on, f_dc, noise, op);
            assert_eq!(
                mgr.to_truth_table(g).unwrap(),
                g_dense,
                "case {case}, {op}: divisors diverge"
            );
            assert!(is_valid_divisor_bdd(&mut mgr, f_on, f_dc, g, op), "case {case}, {op}");

            // Quotient: all three Table II sets bit-identical.
            let dense = quotient_sets(&f, &g_dense, op);
            let (h_on, h_dc) = full_quotient_bdd(&mut mgr, f_on, f_dc, g, op);
            let h_off = quotient_off_bdd(&mut mgr, h_on, h_dc);
            assert_eq!(mgr.to_truth_table(h_on).unwrap(), dense.on, "case {case}, {op}: on");
            assert_eq!(mgr.to_truth_table(h_dc).unwrap(), dense.dc, "case {case}, {op}: dc");
            assert_eq!(mgr.to_truth_table(h_off).unwrap(), dense.off, "case {case}, {op}: off");

            // Verification verdicts agree (and are positive: the seeded
            // divisor is valid, so the canonical quotient always verifies).
            let dense_verified = verify_decomposition_sets(&f, &g_dense, &dense.on, &dense.dc, op);
            let dense_maximal =
                verify_maximal_flexibility_sets(&f, &g_dense, &dense.on, &dense.dc, op);
            let bdd_verified = verify_decomposition_bdd(&mut mgr, f_on, f_dc, g, h_on, h_dc, op);
            let bdd_maximal =
                verify_maximal_flexibility_bdd(&mut mgr, f_on, f_dc, g, h_on, h_dc, op);
            assert_eq!(bdd_verified, dense_verified, "case {case}, {op}: verified");
            assert_eq!(bdd_maximal, dense_maximal, "case {case}, {op}: maximal");
            assert!(bdd_verified && bdd_maximal, "case {case}, {op}: quotient must verify");
            checked += 1;
        }
    }
    assert_eq!(checked, CASES * 10);
}

#[test]
fn bdd_verifiers_reject_tampered_quotients() {
    // The symbolic verifiers must not be vacuously true: tampering with the
    // quotient flips the verdicts exactly as it does densely.
    let mut rng = DetRng::seed_from_u64(0x7A3);
    let n = 6;
    let f = random_isf(n, &mut rng);
    let mut mgr = BddManager::new(n);
    let f_on = mgr.from_truth_table(f.on());
    let f_dc = mgr.from_truth_table(f.dc());
    for op in BinaryOp::all() {
        let g_dense = seeded_divisor(&f, op, 0xFEED);
        let g = mgr.from_truth_table(&g_dense);
        let (h_on, h_dc) = full_quotient_bdd(&mut mgr, f_on, f_dc, g, op);

        // Moving the whole off-set into the dc-set breaks correctness
        // whenever the off-set is non-empty, and maximality regardless.
        let h_off = quotient_off_bdd(&mut mgr, h_on, h_dc);
        let widened_dc = mgr.or(h_dc, h_off);
        if !mgr.is_zero(h_off) {
            assert!(
                !verify_decomposition_bdd(&mut mgr, f_on, f_dc, g, h_on, widened_dc, op),
                "{op}: widened dc-set must break the decomposition"
            );
        }
        // Declaring a don't-care as on keeps correctness but loses
        // maximality.
        if !mgr.is_zero(h_dc) {
            let widened_on = mgr.or(h_on, h_dc);
            let emptied_dc = mgr.zero();
            assert!(
                !verify_maximal_flexibility_bdd(
                    &mut mgr, f_on, f_dc, g, widened_on, emptied_dc, op
                ),
                "{op}: widened on-set must lose maximality"
            );
        }
    }
}

#[test]
fn symbolic_instances_round_trip_through_the_dense_backend() {
    // A symbolic instance small enough to densify produces the same quotient
    // stats through both engine arms (instance-level counterpart of the
    // per-function property above; the engine-level comparison over a whole
    // suite lives in `engine::tests`).
    use benchmarks::{SymbolicFunction, SymbolicInstance};
    let inst = SymbolicInstance::new(
        "rt10",
        10,
        vec![SymbolicFunction::AdderCarry, SymbolicFunction::Parity],
    );
    let dense_inst = inst.to_dense().expect("10 vars fit the dense backend");
    let mut mgr = BddManager::new(10);
    for (o, f) in dense_inst.outputs().iter().enumerate() {
        let (f_on, f_dc) = inst.build_output(&mut mgr, o);
        assert_eq!(mgr.to_truth_table(f_on).unwrap(), *f.on());
        assert_eq!(mgr.to_truth_table(f_dc).unwrap(), *f.dc());
        for op in BinaryOp::all() {
            let g_dense = seeded_divisor(f, op, 0xAB ^ o as u64);
            let g = mgr.from_truth_table(&g_dense);
            let dense = quotient_sets(f, &g_dense, op);
            let (h_on, h_dc) = full_quotient_bdd(&mut mgr, f_on, f_dc, g, op);
            assert_eq!(mgr.to_truth_table(h_on).unwrap(), dense.on, "{op} output {o}");
            assert_eq!(mgr.to_truth_table(h_dc).unwrap(), dense.dc, "{op} output {o}");
        }
    }
}
