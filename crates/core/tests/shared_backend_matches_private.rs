//! Property test pinning the shared-manager backend bit-identical to the
//! private backends: the same ≥256-case corpus as
//! `bdd_backend_matches_dense` (seeded random dividends × all ten Table I
//! operators) is driven through [`WorkerCtx`] views of **one**
//! [`SharedManager`], from several threads at once, and every divisor, every
//! Table II quotient set and both verification verdicts must agree exactly
//! with the dense ground truth — which `bdd_backend_matches_dense` pins to
//! the private [`bdd::BddManager`], so agreement here is transitively
//! agreement between the two symbolic backends.
//!
//! Unlike the private-manager corpus, every case shares one store sized at
//! the widest arity: narrower cases run over its variable prefix and their
//! counts shift down by the unused variables — exactly what the engine's
//! `Backend::BddShared` does.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bdd::{Bdd, SharedManager, WorkerCtx};
use benchmarks::DetRng;
use bidecomp::engine::{seeded_divisor, seeded_divisor_bdd};
use bidecomp::{
    is_valid_divisor_bdd, quotient_sets, verify_decomposition_bdd, verify_decomposition_sets,
    verify_maximal_flexibility_bdd, verify_maximal_flexibility_sets, BinaryOp,
};
use boolfunc::{Isf, TruthTable};

const CASES: usize = 260;
const ARITIES: [usize; 6] = [3, 5, 6, 7, 9, 11];
const STORE_VARS: usize = 11;

/// The same deterministic random ISF stream as `bdd_backend_matches_dense`.
fn random_isf(n: usize, rng: &mut DetRng) -> Isf {
    let dc_a = TruthTable::from_words(n, || rng.next_u64());
    let dc_b = TruthTable::from_words(n, || rng.next_u64());
    let f_dc = &dc_a & &dc_b;
    let f_on = TruthTable::from_words(n, || rng.next_u64()).difference(&f_dc);
    Isf::new(f_on, f_dc).expect("on and dc are disjoint by construction")
}

/// Asserts that `f` (a function in `ctx`'s store, over the variable prefix
/// of `expect`'s arity) is the exact lift of the dense table: same minterm
/// count after shifting out the store's unused variables, same value on
/// every minterm.
fn assert_set_matches(ctx: &WorkerCtx, f: Bdd, expect: &TruthTable, label: &str) {
    let n = expect.num_vars();
    let shift = ctx.num_vars() - n;
    assert_eq!(ctx.sat_count(f) >> shift, expect.count_ones(), "{label}: count");
    for m in 0..(1u64 << n) {
        assert_eq!(ctx.eval(f, m), expect.get(m), "{label}: minterm {m}");
    }
}

/// Replays corpus case `case` through `ctx` and checks every artifact
/// against the dense backend.
fn check_case(ctx: &mut WorkerCtx, case: usize) {
    let n = ARITIES[case % ARITIES.len()];
    let mut rng = DetRng::seed_from_u64(0xB1DE ^ (case as u64) << 8);
    let f = random_isf(n, &mut rng);
    let f_on = ctx.from_truth_table(f.on());
    let f_dc = ctx.from_truth_table(f.dc());

    for (i, op) in BinaryOp::all().into_iter().enumerate() {
        let seed = 0xD1CE_0000 ^ (case as u64) << 16 ^ i as u64;

        let g_dense = seeded_divisor(&f, op, seed);
        let noise = {
            let mut noise_rng = DetRng::seed_from_u64(seed);
            let tt = TruthTable::from_words(n, || noise_rng.next_u64());
            ctx.from_truth_table(&tt)
        };
        let g = seeded_divisor_bdd(ctx, f_on, f_dc, noise, op);
        assert_set_matches(ctx, g, &g_dense, &format!("case {case}, {op}: divisor"));
        assert!(is_valid_divisor_bdd(ctx, f_on, f_dc, g, op), "case {case}, {op}");

        let dense = quotient_sets(&f, &g_dense, op);
        let (h_on, h_dc) = bidecomp::full_quotient_bdd(ctx, f_on, f_dc, g, op);
        let h_off = bidecomp::quotient_off_bdd(ctx, h_on, h_dc);
        assert_set_matches(ctx, h_on, &dense.on, &format!("case {case}, {op}: on"));
        assert_set_matches(ctx, h_dc, &dense.dc, &format!("case {case}, {op}: dc"));
        assert_set_matches(ctx, h_off, &dense.off, &format!("case {case}, {op}: off"));

        let dense_verified = verify_decomposition_sets(&f, &g_dense, &dense.on, &dense.dc, op);
        let dense_maximal = verify_maximal_flexibility_sets(&f, &g_dense, &dense.on, &dense.dc, op);
        let shared_verified = verify_decomposition_bdd(ctx, f_on, f_dc, g, h_on, h_dc, op);
        let shared_maximal = verify_maximal_flexibility_bdd(ctx, f_on, f_dc, g, h_on, h_dc, op);
        assert_eq!(shared_verified, dense_verified, "case {case}, {op}: verified");
        assert_eq!(shared_maximal, dense_maximal, "case {case}, {op}: maximal");
        assert!(shared_verified && shared_maximal, "case {case}, {op}: quotient must verify");
    }
}

#[test]
fn shared_backend_is_bit_identical_to_the_dense_backend_across_workers() {
    let store = Arc::new(SharedManager::new(STORE_VARS));

    // All 260 cases, claimed from a shared counter by four workers hammering
    // the one store concurrently — the assertions run inside the workers, so
    // any divergence fails the join below.
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = WorkerCtx::new(Arc::clone(&store));
                    loop {
                        let case = next.fetch_add(1, Ordering::Relaxed);
                        if case >= CASES {
                            break;
                        }
                        check_case(&mut ctx, case);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("a corpus case diverged from the dense backend");
        }
    });
    store.check_invariants();

    // Hash consing makes the store contents demand-determined: replaying a
    // slice of the corpus single-threaded allocates nothing new.
    let before = store.num_nodes();
    let mut ctx = WorkerCtx::new(Arc::clone(&store));
    for case in 0..ARITIES.len() {
        check_case(&mut ctx, case);
    }
    assert_eq!(store.num_nodes(), before, "a replay must be answered from the shared store");
}
