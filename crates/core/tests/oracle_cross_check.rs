//! Three-judge property test: for 320 seeded random ISFs and all ten Table I
//! operators, the dense word-parallel verifiers, the symbolic BDD verifiers,
//! and the SAT-based [`Oracle`] must return the same verdict on divisor
//! validity, decomposition correctness (Lemmas 1–5) and maximal flexibility
//! (Corollaries 1–4) — on valid seeded divisors *and* on arbitrary random
//! divisors that usually violate the Table II side conditions.
//!
//! A second suite tampers with each quotient set independently and asserts
//! the oracle rejects with the *specific* failed lemma named.

use bdd::BddManager;
use benchmarks::fuzz::fuzz_corpus;
use benchmarks::DetRng;
use bidecomp::{
    correctness_lemma, flexibility_corollary, is_valid_divisor, is_valid_divisor_bdd,
    quotient_sets, seeded_divisor, verify_decomposition_bdd, verify_decomposition_sets,
    verify_maximal_flexibility_bdd, verify_maximal_flexibility_sets, BinaryOp, FailedLemma, Oracle,
};
use boolfunc::{Isf, TruthTable};

/// Compares all three judges on one `(f, g)` pair for one operator; the
/// quotient is always the Table II closed form, so the verdicts exercise the
/// full range (invalid divisor / unverified / non-maximal / all-green).
fn assert_three_way_agreement(
    mgr: &mut BddManager,
    f: &Isf,
    g: &TruthTable,
    op: BinaryOp,
    context: &str,
) {
    let sets = quotient_sets(f, g, op);
    let h = Isf::new(sets.on.clone(), sets.dc.clone()).expect("Table II sets are disjoint");

    let dense_valid = is_valid_divisor(f, g, op);
    let dense_verified = verify_decomposition_sets(f, g, &sets.on, &sets.dc, op);
    let dense_maximal = verify_maximal_flexibility_sets(f, g, &sets.on, &sets.dc, op);

    let f_on = mgr.from_truth_table(f.on());
    let f_dc = mgr.from_truth_table(f.dc());
    let g_bdd = mgr.from_truth_table(g);
    let h_on = mgr.from_truth_table(&sets.on);
    let h_dc = mgr.from_truth_table(&sets.dc);
    let bdd_valid = is_valid_divisor_bdd(mgr, f_on, f_dc, g_bdd, op);
    let bdd_verified = verify_decomposition_bdd(mgr, f_on, f_dc, g_bdd, h_on, h_dc, op);
    let bdd_maximal = verify_maximal_flexibility_bdd(mgr, f_on, f_dc, g_bdd, h_on, h_dc, op);

    let sat_valid = Oracle::check_divisor(f, g, op).is_ok();
    let sat_verified = Oracle::check_decomposition(f, g, &h, op).is_ok();
    let sat_maximal = Oracle::check_maximal_flexibility(f, g, &h, op).is_ok();

    assert_eq!(dense_valid, bdd_valid, "{context}: divisor verdict dense vs BDD");
    assert_eq!(dense_valid, sat_valid, "{context}: divisor verdict dense vs oracle");
    assert_eq!(dense_verified, bdd_verified, "{context}: correctness verdict dense vs BDD");
    assert_eq!(dense_verified, sat_verified, "{context}: correctness verdict dense vs oracle");
    assert_eq!(dense_maximal, bdd_maximal, "{context}: maximality verdict dense vs BDD");
    assert_eq!(dense_maximal, sat_maximal, "{context}: maximality verdict dense vs oracle");
}

#[test]
fn three_judges_agree_on_seeded_and_random_divisors() {
    const CASES: usize = 320;
    let corpus = fuzz_corpus(0x000F_AC13, CASES, 3, 6);
    let mut positive = 0usize;
    let mut negative = 0usize;
    for (case, inst) in corpus.iter().enumerate() {
        let f = &inst.outputs()[0];
        let n = f.num_vars();
        let mut mgr = BddManager::new(n);
        let mut rng = DetRng::seed_from_u64(0xD1CE ^ (case as u64) << 7);
        for op in BinaryOp::all() {
            // Valid-by-construction divisor: everything must verify.
            let g = seeded_divisor(f, op, 0xBEEF ^ (case as u64) << 4);
            assert!(is_valid_divisor(f, &g, op), "case {case}, {op}: seeded divisor");
            assert_three_way_agreement(&mut mgr, f, &g, op, &format!("case {case}, {op}, seeded"));
            positive += 1;

            // Arbitrary noise divisor: usually violates the side condition,
            // so this arm exercises the rejection paths of all three judges.
            let g_noise = TruthTable::from_words(n, || rng.next_u64());
            assert_three_way_agreement(
                &mut mgr,
                f,
                &g_noise,
                op,
                &format!("case {case}, {op}, noise"),
            );
            if !is_valid_divisor(f, &g_noise, op) {
                negative += 1;
            }
        }
    }
    assert_eq!(positive, CASES * 10);
    // The noise arm must actually hit invalid divisors, not vacuously pass.
    assert!(negative > CASES, "only {negative} invalid noise divisors across {CASES} cases");
}

/// A fixed dividend whose Table II quotients have non-empty on/dc/off sets
/// for every operator (checked inside the test), so each tampering direction
/// is exercised for each operator.
fn tamper_dividend() -> Isf {
    let mut rng = DetRng::seed_from_u64(0x7A3B_BEEF);
    let n = 5;
    let noise_a = TruthTable::from_words(n, || rng.next_u64());
    let noise_b = TruthTable::from_words(n, || rng.next_u64());
    let dc = &noise_a & &noise_b;
    let on = TruthTable::from_words(n, || rng.next_u64()).difference(&dc);
    Isf::new(on, dc).unwrap()
}

#[test]
fn tampered_quotients_are_rejected_with_the_failing_lemma_named() {
    let f = tamper_dividend();
    let mut exercised = [0usize; 3];
    for op in BinaryOp::all() {
        let g = seeded_divisor(&f, op, 0xACE);
        let sets = quotient_sets(&f, &g, op);
        let h = Isf::new(sets.on.clone(), sets.dc.clone()).unwrap();
        Oracle::check(&f, &g, &h, op).expect("untampered quotient must pass");

        // off → dc: some completion sets h = 1 where only 0 realizes f, so
        // the operator's correctness lemma must be named.
        if let Some(m) = sets.off.ones().next() {
            let mut dc = sets.dc.clone();
            dc.set(m, true);
            let tampered = Isf::new(sets.on.clone(), dc).unwrap();
            let err = Oracle::check(&f, &g, &tampered, op).expect_err("off→dc must be rejected");
            assert_eq!(err.lemma, FailedLemma::Lemma(correctness_lemma(op)), "{op}: off→dc tamper");
            exercised[0] += 1;
        }

        // on → off: dropping a forced-to-1 minterm allows a completion with
        // h = 0 there — again the correctness lemma.
        if let Some(m) = sets.on.ones().next() {
            let mut on = sets.on.clone();
            on.set(m, false);
            let tampered = Isf::new(on, sets.dc.clone()).unwrap();
            let err = Oracle::check(&f, &g, &tampered, op).expect_err("on→off must be rejected");
            assert_eq!(err.lemma, FailedLemma::Lemma(correctness_lemma(op)), "{op}: on→off tamper");
            exercised[1] += 1;
        }

        // dc → on: every completion still realizes f, but the quotient is no
        // longer maximally flexible — the operator's corollary is named.
        if let Some(m) = sets.dc.ones().next() {
            let mut on = sets.on.clone();
            let mut dc = sets.dc.clone();
            on.set(m, true);
            dc.set(m, false);
            let tampered = Isf::new(on, dc).unwrap();
            Oracle::check_decomposition(&f, &g, &tampered, op)
                .expect("dc→on keeps every completion correct");
            let err = Oracle::check(&f, &g, &tampered, op).expect_err("dc→on must be rejected");
            assert_eq!(
                err.lemma,
                FailedLemma::Corollary(flexibility_corollary(op)),
                "{op}: dc→on tamper"
            );
            exercised[2] += 1;
        }
    }
    // Every tampering direction must fire for (almost) every operator; the
    // dividend above is chosen so none of the quotient sets is empty.
    assert_eq!(exercised, [10, 10, 10], "some tamper direction was never exercised");
}

#[test]
fn invalid_divisors_fail_the_side_condition_before_any_lemma() {
    let f = tamper_dividend();
    let mut rejected = 0usize;
    for op in BinaryOp::all() {
        // The *complement* of a valid divisor violates every one-sided
        // condition of Table II on this dividend; XOR/XNOR accept anything.
        let g = !&seeded_divisor(&f, op, 0xACE);
        let sets = quotient_sets(&f, &g, op);
        let h = Isf::new(sets.on.clone(), sets.dc.clone()).unwrap();
        match Oracle::check(&f, &g, &h, op) {
            Err(err) if !is_valid_divisor(&f, &g, op) => {
                assert_eq!(err.lemma, FailedLemma::SideCondition, "{op}");
                rejected += 1;
            }
            Err(err) => panic!("{op}: valid divisor rejected: {err}"),
            Ok(()) => assert!(is_valid_divisor(&f, &g, op), "{op}: invalid divisor accepted"),
        }
    }
    assert_eq!(rejected, 8, "the eight one-sided operators must all reject");
}
