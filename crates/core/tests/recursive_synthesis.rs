//! Integration tests of the recursive bi-decomposition synthesis engine:
//! the bit-identical thread-count guarantee of `sweep_synthesis`, and
//! end-to-end network verification across a whole suite.

use benchmarks::Suite;
use bidecomp::engine::{sweep_synthesis, SynthesisConfig};
use bidecomp::recursive::verify_network;
use bidecomp::{ApproxStrategy, BinaryOp, RecursiveConfig, RecursiveSynthesizer};

/// The satellite property test: the synthesis sweep is a pure function of
/// `(suite, config)` — fanning it over 1, 2 and 8 workers must produce
/// bit-identical results (including the f64 areas, compared via `to_bits`
/// inside `semantic()`).
#[test]
fn sweep_synthesis_is_bit_identical_across_thread_counts() {
    let suite = Suite::smoke();
    // Include a Seeded entry so the seed-stability path is exercised too.
    let mut config = SynthesisConfig::default();
    config.recursive.portfolio.push((BinaryOp::Xor, ApproxStrategy::Seeded { seed: 0x5EED }));

    let reports: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| sweep_synthesis(&suite, &SynthesisConfig { threads, ..config.clone() }))
        .collect();
    let reference: Vec<_> = reports[0].jobs.iter().map(|j| j.semantic()).collect();
    for report in &reports[1..] {
        assert_eq!(report.total_jobs(), reports[0].total_jobs());
        let got: Vec<_> = report.jobs.iter().map(|j| j.semantic()).collect();
        assert_eq!(got, reference, "{} threads diverged from 1 thread", report.threads);
    }
    assert!(reports[0].all_verified());
}

/// Every network the sweep produces agrees with its function on the full
/// care set — re-checked here from the outside (the engine also verifies
/// internally) by re-synthesizing and exhaustively evaluating.
#[test]
fn every_smoke_network_evaluates_like_its_function() {
    let suite = Suite::smoke();
    let synthesizer = RecursiveSynthesizer::new(RecursiveConfig::default());
    for inst in suite.instances() {
        for (oi, f) in inst.outputs().iter().enumerate().take(2) {
            let result = synthesizer.synthesize(f).unwrap();
            assert!(result.verified, "{}[{oi}]", inst.name());
            assert!(verify_network(f, &result.network, 0), "{}[{oi}]", inst.name());
            // The flat form is a realization of f too, so the gain is
            // never negative.
            assert!(result.mapped_area <= result.flat_area + 1e-9, "{}[{oi}]", inst.name());
        }
    }
}

/// The report's aggregate helpers are consistent with the per-job data.
#[test]
fn report_aggregates_match_jobs() {
    let report = sweep_synthesis(
        &Suite::smoke(),
        &SynthesisConfig { threads: 2, max_outputs: 2, ..SynthesisConfig::default() },
    );
    let gates: usize = report.jobs.iter().map(|j| j.gates).sum();
    assert_eq!(report.total_gates(), gates);
    let mean: f64 =
        report.jobs.iter().map(|j| j.gain_percent()).sum::<f64>() / report.jobs.len() as f64;
    assert!((report.average_gain_percent() - mean).abs() < 1e-12);
}
