//! Property-style checks (deterministic 256-case loops, matching the PR-1
//! convention) that the batch engine's allocation-free hot path is
//! bit-identical to the sequential [`bidecomp::full_quotient`] path for every
//! operator, and that the scratch buffers can be reused across operators and
//! arities without bleeding state between jobs.

use benchmarks::{DetRng, Suite};
use bidecomp::engine::{seeded_divisor, sweep, EngineConfig};
use bidecomp::{
    full_quotient, quotient_sets, verify_decomposition, verify_maximal_flexibility, BinaryOp,
    QuotientScratch, QuotientSets,
};
use boolfunc::{Isf, TruthTable};

/// A deterministic pseudo-random ISF over `num_vars` variables.
fn random_isf(num_vars: usize, rng: &mut DetRng) -> Isf {
    let dc = TruthTable::from_words(num_vars, || rng.next_u64());
    let on = TruthTable::from_words(num_vars, || rng.next_u64()).difference(&dc);
    Isf::new(on, dc).expect("on and dc are disjoint by construction")
}

#[test]
fn scratch_path_is_bit_identical_to_full_quotient_for_256_cases() {
    let mut rng = DetRng::seed_from_u64(0x0256);
    // One scratch + output pair reused across ALL cases, operators and
    // arities — exactly how an engine worker drives it.
    let mut scratch = QuotientScratch::new(0);
    let mut sets = QuotientSets::zero(0);
    for case in 0..256 {
        let num_vars = 3 + case % 5; // 3..=7: partial-word and 2-word tables
        if scratch.num_vars() != num_vars {
            scratch = QuotientScratch::new(num_vars);
            sets = QuotientSets::zero(num_vars);
        }
        let f = random_isf(num_vars, &mut rng);
        for op in BinaryOp::all() {
            let g = seeded_divisor(&f, op, rng.next_u64());

            // Sequential path: divisor validation + allocating quotient.
            let h = full_quotient(&f, &g, op)
                .unwrap_or_else(|e| panic!("case {case}, {op}: seeded divisor rejected: {e}"));

            // Engine path: reused scratch buffers.
            scratch.quotient_sets_into(&f, &g, op, &mut sets);

            assert_eq!(&sets.on, h.on(), "case {case}, {op}: on-sets differ");
            assert_eq!(&sets.dc, h.dc(), "case {case}, {op}: dc-sets differ");
            assert_eq!(sets.off, h.off(), "case {case}, {op}: off-sets differ");
            assert!(verify_decomposition(&f, &g, &h, op), "case {case}, {op}: lemmas");
            assert!(verify_maximal_flexibility(&f, &g, &h, op), "case {case}, {op}: corollaries");
        }
    }
}

#[test]
fn engine_report_matches_a_hand_rolled_sequential_sweep() {
    let suite = Suite::smoke();
    let config = EngineConfig { threads: 3, ..EngineConfig::default() };
    let report = sweep(&suite, &config);

    // Re-run every job sequentially through the public one-shot API and
    // compare the recorded statistics field by field.
    let mut job = 0;
    for (ii, inst) in suite.instances().iter().enumerate() {
        if inst.num_inputs() > config.max_inputs {
            continue;
        }
        for (oi, f) in inst.outputs().iter().take(config.max_outputs).enumerate() {
            for (ki, &op) in config.ops.iter().enumerate() {
                let g = seeded_divisor(f, op, config.job_seed(ii, oi, ki));
                let sets = quotient_sets(f, &g, op);
                let r = &report.jobs[job];
                assert_eq!(r.instance, inst.name(), "job {job}");
                assert_eq!((r.output, r.op), (oi, op), "job {job}");
                assert_eq!(r.on_minterms, sets.on.count_ones(), "job {job}: |h_on|");
                assert_eq!(r.dc_minterms, sets.dc.count_ones(), "job {job}: |h_dc|");
                assert_eq!(r.off_minterms, sets.off.count_ones(), "job {job}: |h_off|");
                let h = full_quotient(f, &g, op).expect("seeded divisor is valid");
                assert_eq!(
                    r.divisor_errors,
                    (&(f.on() ^ &g) & &f.care()).count_ones(),
                    "job {job}: divisor errors"
                );
                assert!(r.verified && verify_decomposition(f, &g, &h, op), "job {job}");
                assert!(r.maximal && verify_maximal_flexibility(f, &g, &h, op), "job {job}");
                job += 1;
            }
        }
    }
    assert_eq!(job, report.total_jobs(), "engine ran a different job set");
}
