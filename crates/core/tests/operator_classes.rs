//! One pinned unit test per operator class (AND-like, OR-like, XOR-like) on
//! the Fig. 1 function, asserting both `verify_decomposition` (Lemmas 1–5)
//! and `verify_maximal_flexibility` (Corollaries 1–4).
//!
//! The big pipeline test exercises Table II through the full synthesis flow;
//! these tests pin the quotient formulas themselves on the paper's own worked
//! example, so a regression in one operator class is reported by name even if
//! the pipeline happens to mask it.

use bidecomp::{full_quotient, verify_decomposition, verify_maximal_flexibility};
use bidecomp::{BinaryOp, OperatorClass};
use boolfunc::{Cover, Isf, TruthTable};

/// Fig. 1 of the paper: f = x0 x1 x3 + x1 x2 x3 over four variables.
fn fig1_function() -> Isf {
    Isf::from_cover_str(4, &["11-1", "-111"], &[]).expect("Fig. 1 cover is well-formed")
}

/// The divisor used throughout Fig. 1: g = x1 x3, a 0→1 over-approximation
/// of `f` (it adds the single minterm x0'x1x2'x3).
fn fig1_divisor() -> TruthTable {
    Cover::from_strs(4, &["-1-1"]).expect("Fig. 1 divisor is well-formed").to_truth_table()
}

/// A divisor valid for (`f`, `op`), derived from the Fig. 1 approximation by
/// the Table II side condition of the operator's class.
fn divisor_for(f: &Isf, op: BinaryOp) -> TruthTable {
    let g = fig1_divisor();
    match op {
        // g ⊇ on(f): the Fig. 1 over-approximation itself.
        BinaryOp::And | BinaryOp::NonImplication => g,
        // g ⊆ on(f): intersect the approximation back with the on-set.
        BinaryOp::Or | BinaryOp::ConverseImplication => &g & f.on(),
        // g ⊆ off(f): an under-approximation of the complement.
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => &!g & &f.off(),
        // g ⊇ off(f): an over-approximation of the complement.
        BinaryOp::Implication | BinaryOp::Nand => &f.off() | &g,
        // Any g works for the XOR-like operators.
        BinaryOp::Xor | BinaryOp::Xnor => g,
    }
}

fn check_class(class: OperatorClass) {
    let f = fig1_function();
    let ops: Vec<BinaryOp> = BinaryOp::all().into_iter().filter(|op| op.class() == class).collect();
    assert!(!ops.is_empty(), "{class:?} has no operators");
    for op in ops {
        let g = divisor_for(&f, op);
        let h = full_quotient(&f, &g, op)
            .unwrap_or_else(|e| panic!("{op}: divisor should satisfy Table II: {e}"));
        assert!(verify_decomposition(&f, &g, &h, op), "{op}: Lemma violated on Fig. 1");
        assert!(verify_maximal_flexibility(&f, &g, &h, op), "{op}: Corollary violated on Fig. 1");
    }
}

#[test]
fn and_like_operators_on_fig1() {
    check_class(OperatorClass::AndLike);
}

#[test]
fn or_like_operators_on_fig1() {
    check_class(OperatorClass::OrLike);
}

#[test]
fn xor_like_operators_on_fig1() {
    check_class(OperatorClass::XorLike);
}

/// The headline numbers of Fig. 1, pinned exactly: g = x1 x3 introduces one
/// error, and the AND quotient leaves all of it to the dc-set (12 of 16
/// minterms are don't-cares).
#[test]
fn fig1_and_quotient_is_the_paper_one() {
    let f = fig1_function();
    let g = fig1_divisor();
    let h = full_quotient(&f, &g, BinaryOp::And).expect("g is a 0→1 over-approximation");
    // on(h) = on(f): the quotient must keep every on-set minterm alive.
    assert_eq!(h.on(), f.on(), "on-set of the AND quotient is on(f)");
    // The single added minterm x0'x1x2'x3 (0b1010 as x3x2x1x0) is forced off.
    assert_eq!(h.off().count_ones(), 1, "exactly one minterm is forced to 0");
    assert!(h.off().get(0b1010), "the forced-off minterm is x0'x1x2'x3");
    // Everything g already maps to 0 is flexible: 16 - 3 - 1 = 12 dc minterms.
    assert_eq!(h.dc().count_ones(), 12, "maximal flexibility leaves 12 don't-cares");
}
