//! Zero-dependency observability runtime for the bi-decomposition stack.
//!
//! Every layer of the workspace (engine sweeps, BDD managers, the NPN cache,
//! the `bidecompd` server) reports health through one [`Registry`] of named
//! metrics:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`, bumped with
//!   `Relaxed` ordering (an uncontended atomic add on the hot path);
//! * [`Gauge`] — a point-in-time value plus its observed peak
//!   (`set` + `fetch_max`), used for queue depth and node counts;
//! * [`Histogram`] — a log₂-bucketed latency histogram with **fixed bucket
//!   edges**, so its serialization is a deterministic function of the
//!   recorded values and quantiles are exact arithmetic over bucket counts
//!   (cumulative walk + linear interpolation within the bucket);
//! * [`Timer`] / [`Counter::time_scope`] / [`Histogram::time_scope`] —
//!   lightweight span timing for phase attribution.
//!
//! Hot loops that cannot afford even a relaxed atomic per event record into a
//! plain per-worker [`LocalHistogram`] (or accumulate plain `u64`s) and merge
//! into the shared registry once, when the worker retires. Handles are cheap
//! `Arc` clones; the registry mutex is touched only at registration and
//! snapshot time, never on the record path.
//!
//! **Metrics never influence results.** Nothing in this crate feeds back into
//! decomposition: callers only read clocks and bump counts, and every
//! semantic fingerprint in the workspace is computed from result data that
//! excludes observability state. The engine's determinism tests pin this by
//! running identical sweeps with and without a registry attached.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Number of histogram buckets. Bucket `0` holds the value `0`; bucket `i`
/// (for `1 <= i < BUCKETS - 1`) holds values in `[2^(i-1), 2^i)`; the last
/// bucket is open-ended. With 40 buckets the penultimate edge is `2^38` µs
/// (~76 hours), far beyond any latency this stack produces.
pub const BUCKETS: usize = 40;

/// The bucket index a value lands in. Pure and total: the edges are fixed at
/// compile time, so two histograms fed the same multiset of values are
/// bit-identical regardless of thread count or record order.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let bits = 64 - value.leading_zeros() as usize;
        bits.min(BUCKETS - 1)
    }
}

/// Inclusive lower edge of bucket `index`.
#[must_use]
pub fn bucket_lower(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Exclusive upper edge of bucket `index` (the last bucket is open-ended in
/// practice; for interpolation it is treated as one octave wide).
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    1u64 << index
}

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// A drop guard that adds the elapsed nanoseconds to this counter —
    /// the cheapest possible phase scope.
    #[must_use]
    pub fn time_scope(&self) -> CounterScope<'_> {
        CounterScope { counter: self, start: Instant::now() }
    }
}

/// Drop guard from [`Counter::time_scope`]; adds elapsed nanos on drop.
#[derive(Debug)]
pub struct CounterScope<'a> {
    counter: &'a Counter,
    start: Instant,
}

impl Drop for CounterScope<'_> {
    fn drop(&mut self) {
        self.counter.add(self.start.elapsed().as_nanos() as u64);
    }
}

/// A point-in-time value with peak tracking. Clones share the same cells.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    current: Arc<AtomicU64>,
    peak: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero, not attached to any registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current value, updating the peak if exceeded.
    pub fn set(&self, value: u64) {
        self.current.store(value, Ordering::Relaxed);
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest value ever passed to [`Gauge::set`].
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A shared log₂-bucketed histogram. Clones share the same buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram, not attached to any registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (typically microseconds).
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A drop guard that records the elapsed **microseconds** on drop.
    #[must_use]
    pub fn time_scope(&self) -> HistogramScope<'_> {
        HistogramScope { histogram: self, start: Instant::now() }
    }

    /// A plain-data copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> =
            self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            counts,
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// Drop guard from [`Histogram::time_scope`]; records elapsed µs on drop.
#[derive(Debug)]
pub struct HistogramScope<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramScope<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed().as_micros() as u64);
    }
}

/// A per-worker histogram with no atomics: record on the hot path for free,
/// then [`LocalHistogram::merge_into`] a shared [`Histogram`] once when the
/// worker retires.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram { counts: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl LocalHistogram {
    /// A fresh empty local histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold this worker's buckets into a shared histogram. One atomic add per
    /// non-empty bucket — independent of how many values were recorded.
    pub fn merge_into(&self, target: &Histogram) {
        for (index, &n) in self.counts.iter().enumerate() {
            if n != 0 {
                target.inner.buckets[index].fetch_add(n, Ordering::Relaxed);
            }
        }
        if self.count != 0 {
            target.inner.count.fetch_add(self.count, Ordering::Relaxed);
            target.inner.sum.fetch_add(self.sum, Ordering::Relaxed);
        }
    }

    /// A plain-data copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { counts: self.counts.to_vec(), count: self.count, sum: self.sum }
    }
}

/// Plain-data histogram state: per-bucket counts plus total count and sum.
/// Quantiles are computed here, deterministically, from the bucket counts
/// alone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Count per bucket; `counts.len() == BUCKETS` when non-empty.
    pub counts: Vec<u64>,
    /// Total number of recorded values (equals the sum of `counts`).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (`0.0` when empty). Exact: `sum` is the
    /// true sum, not a bucket approximation.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 <= q <= 1.0`) estimated from bucket counts: a
    /// cumulative walk locates the bucket holding the target rank, then the
    /// value is linearly interpolated between the bucket's edges by the rank's
    /// position among that bucket's samples. A pure function of the counts —
    /// identical for any thread count or record order that produced them.
    /// Returns `0.0` for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let position = target - cum; // 1-based rank within this bucket
                let lower = bucket_lower(index) as f64;
                let width = (bucket_upper(index) - bucket_lower(index)) as f64;
                return lower + width * (position as f64 / n as f64);
            }
            cum += n;
        }
        // Unreachable when count equals the sum of counts; fall back to the
        // top edge rather than panic if the two ever disagree.
        bucket_upper(BUCKETS - 1) as f64
    }
}

/// Point-in-time value and peak of a [`Gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeSnapshot {
    /// Last value set.
    pub current: u64,
    /// Highest value ever set.
    pub peak: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Registration hands out cheap clonable
/// handles; the internal mutex is only taken to register or snapshot, so the
/// record path never locks. Names are free-form dotted strings
/// (`"server.latency.decompose"`); snapshots iterate in sorted name order, so
/// serialization is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Plain-data copy of a whole registry, each section sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, GaugeSnapshot)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn with_metrics<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut metrics)
    }

    /// The counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.with_metrics(|metrics| {
            let metric =
                metrics.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::new()));
            match metric {
                Metric::Counter(c) => c.clone(),
                other => panic!("metric '{name}' already registered as a {}", other.kind()),
            }
        })
    }

    /// The gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or histogram.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.with_metrics(|metrics| {
            let metric =
                metrics.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::new()));
            match metric {
                Metric::Gauge(g) => g.clone(),
                other => panic!("metric '{name}' already registered as a {}", other.kind()),
            }
        })
    }

    /// The histogram named `name`, registering it empty on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or gauge.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.with_metrics(|metrics| {
            let metric = metrics
                .entry(name.to_string())
                .or_insert_with(|| Metric::Histogram(Histogram::new()));
            match metric {
                Metric::Histogram(h) => h.clone(),
                other => panic!("metric '{name}' already registered as a {}", other.kind()),
            }
        })
    }

    /// Convenience: bump the counter `name` by `n` (registering it on first
    /// use). Intended for merge points, not hot loops — hot paths should hold
    /// a [`Counter`] handle or accumulate locally.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Plain-data copy of every metric, sections sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.with_metrics(|metrics| {
            let mut snapshot = Snapshot::default();
            for (name, metric) in metrics.iter() {
                match metric {
                    Metric::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => snapshot
                        .gauges
                        .push((name.clone(), GaugeSnapshot { current: g.get(), peak: g.peak() })),
                    Metric::Histogram(h) => {
                        snapshot.histograms.push((name.clone(), h.snapshot()));
                    }
                }
            }
            snapshot
        })
    }
}

/// A started wall-clock timer for explicit span timing.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Timer { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`Timer::start`].
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Microseconds elapsed since [`Timer::start`].
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value lands in the bucket whose [lower, upper) range holds it.
        for value in [0u64, 1, 2, 5, 17, 1000, 123_456, 1 << 37, (1 << 38) + 1] {
            let b = bucket_index(value);
            assert!(value >= bucket_lower(b));
            if b < BUCKETS - 1 {
                assert!(value < bucket_upper(b));
            }
        }
    }

    #[test]
    fn histogram_sum_and_count_match_contributions() {
        let h = Histogram::new();
        let values = [0u64, 1, 3, 3, 90, 1500, 1500, 1 << 20];
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        // Total bucket contributions equal the count.
        assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 7);
        }
        let snap = h.snapshot();
        // Monotone CDF: quantile is non-decreasing in q.
        let mut last = f64::NEG_INFINITY;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let value = snap.quantile(q);
            assert!(value >= last, "quantile({q}) = {value} < {last}");
            last = value;
        }
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));
        // Quantiles stay within the recorded range's bucket edges.
        let max_bucket = bucket_index(999 * 7);
        assert!(snap.quantile(1.0) <= bucket_upper(max_bucket) as f64);
        assert!(snap.quantile(0.0) >= 0.0);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(600); // bucket [512, 1024)
        }
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let value = snap.quantile(q);
            assert!((512.0..=1024.0).contains(&value), "quantile({q}) = {value}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn local_histogram_merges_exactly() {
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        let direct = Histogram::new();
        for v in [0u64, 1, 9, 80, 80, 4096] {
            local.record(v);
            direct.record(v);
        }
        local.merge_into(&shared);
        assert_eq!(shared.snapshot(), direct.snapshot());
        assert_eq!(local.snapshot(), direct.snapshot());
        assert_eq!(local.count(), 6);
    }

    #[test]
    fn merge_is_thread_count_invariant() {
        // The same multiset of values recorded by 1 thread or 8 threads must
        // produce bit-identical snapshots.
        let sequential = Histogram::new();
        for worker in 0..8u64 {
            for i in 0..500u64 {
                sequential.record(worker * 1000 + i * 3);
            }
        }
        let concurrent = Histogram::new();
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let target = &concurrent;
                scope.spawn(move || {
                    let mut local = LocalHistogram::new();
                    for i in 0..500u64 {
                        local.record(worker * 1000 + i * 3);
                    }
                    local.merge_into(target);
                });
            }
        });
        assert_eq!(sequential.snapshot(), concurrent.snapshot());
    }

    #[test]
    fn counters_and_gauges_track() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share the same cell");

        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    fn counter_scope_accumulates_nanos() {
        let c = Counter::new();
        {
            let _scope = c.time_scope();
            std::hint::black_box(());
        }
        // Elapsed time is positive on any real clock; zero only if the clock
        // did not tick, which still must not underflow.
        let _ = c.get();
    }

    #[test]
    fn registry_snapshot_is_sorted_and_stable() {
        let registry = Registry::new();
        registry.counter("z.last").add(2);
        registry.counter("a.first").add(1);
        registry.gauge("m.depth").set(5);
        registry.histogram("m.latency").record(100);
        let snap = registry.snapshot();
        let counter_names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(counter_names, ["a.first", "z.last"]);
        assert_eq!(snap.gauges[0].0, "m.depth");
        assert_eq!(snap.gauges[0].1, GaugeSnapshot { current: 5, peak: 5 });
        assert_eq!(snap.histograms[0].0, "m.latency");
        assert_eq!(snap.histograms[0].1.count, 1);
        // Re-registering returns a handle to the same cell.
        registry.counter("a.first").inc();
        assert_eq!(registry.snapshot().counters[0].1, 2);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn registry_rejects_kind_mismatch() {
        let registry = Registry::new();
        let _ = registry.counter("dual");
        let _ = registry.gauge("dual");
    }

    #[test]
    fn timer_reports_elapsed() {
        let t = Timer::start();
        std::hint::black_box(0u64);
        assert!(t.elapsed_nanos() >= t.elapsed_micros());
    }
}
