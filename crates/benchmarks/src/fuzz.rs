//! Seeded random ISF corpora for the cross-backend oracle fuzzer.
//!
//! Every case is a single-output [`BenchmarkInstance`] drawn deterministically
//! from a [`DetRng`] stream: the corpus is a pure function of `(seed, count,
//! arity range)`, so a failing case can always be regenerated from the
//! parameters a harness prints. The generator cycles through the arity range
//! and varies the dc-set density — fully specified functions, sparse and
//! dense dc-sets all occur — because the quotient formulas branch on how much
//! of `f` is unspecified.

use boolfunc::{Isf, TruthTable};

use crate::instance::BenchmarkInstance;
use crate::rng::DetRng;

/// Deterministic corpus of `count` single-output random ISFs with arities
/// cycling over `min_vars..=max_vars`.
///
/// Case `i` is named `fuzz{i:04}_{n}v` and depends only on `(seed, i)`; the
/// dc-set density cycles through four profiles (none, sparse, balanced,
/// dense) so completely specified functions are always part of the corpus.
///
/// # Panics
///
/// Panics if `min_vars` is 0 or `min_vars > max_vars` (arity 0 would make
/// every function constant and teach the fuzzer nothing).
pub fn fuzz_corpus(
    seed: u64,
    count: usize,
    min_vars: usize,
    max_vars: usize,
) -> Vec<BenchmarkInstance> {
    assert!(min_vars >= 1, "fuzz corpus needs at least one input");
    assert!(min_vars <= max_vars, "empty arity range");
    let arities = max_vars - min_vars + 1;
    (0..count)
        .map(|i| {
            let n = min_vars + i % arities;
            let mut rng = DetRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let dc = match i % 4 {
                0 => TruthTable::zero(n), // completely specified
                1 => {
                    // Sparse dc-set: two noise streams intersected.
                    let a = TruthTable::from_words(n, || rng.next_u64());
                    let b = TruthTable::from_words(n, || rng.next_u64());
                    &a & &b
                }
                2 => TruthTable::from_words(n, || rng.next_u64()), // balanced
                _ => {
                    // Dense dc-set: two noise streams joined.
                    let a = TruthTable::from_words(n, || rng.next_u64());
                    let b = TruthTable::from_words(n, || rng.next_u64());
                    &a | &b
                }
            };
            let noise = TruthTable::from_words(n, || rng.next_u64());
            let on = noise.difference(&dc);
            let f = Isf::new(on, dc).expect("on and dc are disjoint by construction");
            BenchmarkInstance::new(format!("fuzz{i:04}_{n}v"), vec![f])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_cycles_arities() {
        let a = fuzz_corpus(0xF022, 12, 3, 6);
        let b = fuzz_corpus(0xF022, 12, 3, 6);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.outputs(), y.outputs());
        }
        let arities: Vec<usize> = a.iter().map(|i| i.num_inputs()).collect();
        assert_eq!(&arities[..5], &[3, 4, 5, 6, 3]);
        // Every 4th case is completely specified; its neighbours are not.
        assert!(a[0].outputs()[0].is_completely_specified());
        assert!(a.iter().any(|i| !i.outputs()[0].is_completely_specified()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = fuzz_corpus(1, 8, 4, 4);
        let b = fuzz_corpus(2, 8, 4, 4);
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.outputs() != y.outputs()),
            "seed must steer the corpus"
        );
    }
}
