//! Arithmetic benchmark instances regenerated from their public definitions.
//!
//! The LGSynth91 arithmetic PLAs compute small arithmetic functions of their
//! inputs; those are reproduced here exactly from the arithmetic definition
//! (adders, saturating subtraction, distance, maxima, logarithms,
//! polynomials). Where the historical table is not precisely documented the
//! closest standard arithmetic interpretation with the same input/output
//! count is used; the substitution is recorded in `DESIGN.md` and only
//! affects absolute areas, not the code paths exercised.

use crate::instance::BenchmarkInstance;

fn low_bits(m: u64, bits: usize) -> u64 {
    m & ((1u64 << bits) - 1)
}

/// `bits`-bit ripple-carry adder: `2·bits` inputs, `bits + 1` outputs.
/// `adder("adr4", 4)` is the `adr4` instance, `adder("add6", 6)` is `add6`.
pub fn adder(name: &str, bits: usize) -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn(name, 2 * bits, bits + 1, move |m| {
        let a = low_bits(m, bits);
        let b = low_bits(m >> bits, bits);
        a + b
    })
}

/// The `adr4` instance (8 inputs / 5 outputs).
pub fn adr4() -> BenchmarkInstance {
    adder("adr4", 4)
}

/// The `add6` instance (12 inputs / 7 outputs).
pub fn add6() -> BenchmarkInstance {
    adder("add6", 6)
}

/// The `radd` instance (8 inputs / 5 outputs): a 4-bit adder whose operands
/// are interleaved rather than concatenated (a routing variation that changes
/// the SOP structure but not the arithmetic).
pub fn radd() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("radd", 8, 5, |m| {
        let mut a = 0u64;
        let mut b = 0u64;
        for i in 0..4 {
            a |= ((m >> (2 * i)) & 1) << i;
            b |= ((m >> (2 * i + 1)) & 1) << i;
        }
        a + b
    })
}

/// The `z4` instance (7 inputs / 4 outputs): sum of two 3-bit operands and a
/// carry-in.
pub fn z4() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("z4", 7, 4, |m| {
        let a = low_bits(m, 3);
        let b = low_bits(m >> 3, 3);
        let cin = (m >> 6) & 1;
        a + b + cin
    })
}

/// The `dist` instance (8 inputs / 5 outputs): distance-like metric between
/// two 4-bit operands (sum of absolute difference and minimum).
pub fn dist() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("dist", 8, 5, |m| {
        let a = low_bits(m, 4) as i64;
        let b = low_bits(m >> 4, 4) as i64;
        ((a - b).abs() + a.min(b)) as u64
    })
}

/// The `clip` instance (9 inputs / 5 outputs): saturating (clipped) signed
/// difference of a 5-bit and a 4-bit operand.
pub fn clip() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("clip", 9, 5, |m| {
        let a = low_bits(m, 5) as i64;
        let b = low_bits(m >> 5, 4) as i64;
        (a - b).clamp(0, 31) as u64
    })
}

/// The `log8mod` instance (8 inputs / 5 outputs): integer base-2 logarithm of
/// the input concatenated with the input modulo 5.
pub fn log8mod() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("log8mod", 8, 5, |m| {
        let x = low_bits(m, 8);
        let log = if x == 0 { 0 } else { 63 - u64::from(x.leading_zeros()) };
        (log << 2) | (x % 4)
    })
}

/// The `Z5xp1` instance (7 inputs / 10 outputs): the polynomial `x² + x + 1`
/// of the 7-bit input, truncated to 10 output bits.
pub fn z5xp1() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("Z5xp1", 7, 10, |m| {
        let x = low_bits(m, 7);
        (x * x + x + 1) & 0x3FF
    })
}

/// The `max512` instance (9 inputs / 6 outputs): maximum of a 5-bit and a
/// 4-bit operand, scaled to 6 output bits.
pub fn max512() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("max512", 9, 6, |m| {
        let a = low_bits(m, 5);
        let b = low_bits(m >> 5, 4) << 1;
        a.max(b)
    })
}

/// The `max1024` instance (10 inputs / 6 outputs): maximum of two 5-bit
/// operands plus their average, truncated to 6 bits.
pub fn max1024() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("max1024", 10, 6, |m| {
        let a = low_bits(m, 5);
        let b = low_bits(m >> 5, 5);
        (a.max(b) + (a + b) / 4) & 0x3F
    })
}

/// The `ex7`-like instance (10 inputs / 5 outputs): the original `ex7` has 16
/// inputs; it is scaled down to 10 inputs to stay inside the dense backend
/// (documented substitution). The function is a bit-mixing hash truncated to
/// 5 bits, giving the same "hard for SOP" character.
pub fn ex7() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("ex7", 10, 5, |m| {
        let x = low_bits(m, 10);
        let mixed = x ^ (x >> 3) ^ (x << 2);
        (mixed.wrapping_mul(0x2B)) & 0x1F
    })
}

/// The `mp2d`-like instance (10 inputs / 8 outputs): the original has 14/14;
/// scaled down (documented substitution). Priority-encoder-like control
/// function.
pub fn mp2d() -> BenchmarkInstance {
    BenchmarkInstance::from_word_fn("mp2d", 10, 8, |m| {
        let x = low_bits(m, 10);
        let priority = 64 - u64::from(x.leading_zeros() - 54);
        if x == 0 {
            0
        } else {
            (1 << (priority % 8)) | u64::from(x.count_ones().is_multiple_of(2))
        }
    })
}

/// All arithmetic instances, in the order they appear in Table IV.
pub fn all() -> Vec<BenchmarkInstance> {
    vec![
        dist(),
        max512(),
        ex7(),
        z4(),
        clip(),
        max1024(),
        adr4(),
        radd(),
        add6(),
        log8mod(),
        z5xp1(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_sizes_match_the_paper() {
        assert_eq!((adr4().num_inputs(), adr4().num_outputs()), (8, 5));
        assert_eq!((add6().num_inputs(), add6().num_outputs()), (12, 7));
        assert_eq!((radd().num_inputs(), radd().num_outputs()), (8, 5));
        assert_eq!((z4().num_inputs(), z4().num_outputs()), (7, 4));
    }

    #[test]
    fn adder_computes_sums() {
        let inst = adr4();
        // a = 5, b = 9 -> 14 = 0b01110.
        let m = 5 | (9 << 4);
        let expected = 14u64;
        for (o, isf) in inst.outputs().iter().enumerate() {
            assert_eq!(isf.on().get(m), expected >> o & 1 == 1, "sum bit {o}");
        }
    }

    #[test]
    fn table_iv_sizes_match_the_paper() {
        assert_eq!((dist().num_inputs(), dist().num_outputs()), (8, 5));
        assert_eq!((clip().num_inputs(), clip().num_outputs()), (9, 5));
        assert_eq!((max512().num_inputs(), max512().num_outputs()), (9, 6));
        assert_eq!((max1024().num_inputs(), max1024().num_outputs()), (10, 6));
        assert_eq!((log8mod().num_inputs(), log8mod().num_outputs()), (8, 5));
        assert_eq!((z5xp1().num_inputs(), z5xp1().num_outputs()), (7, 10));
    }

    #[test]
    fn clip_saturates() {
        let inst = clip();
        // a = 1, b = 15 -> clamp(1 - 15) = 0.
        let m = 1 | (15 << 5);
        for isf in inst.outputs() {
            assert!(!isf.on().get(m));
        }
        // a = 31, b = 0 -> 31 = all five output bits set.
        let m = 31;
        for isf in inst.outputs() {
            assert!(isf.on().get(m));
        }
    }

    #[test]
    fn all_instances_are_completely_specified_and_nontrivial() {
        for inst in all() {
            assert!(inst.num_inputs() <= 12, "{inst} too large for the dense backend");
            assert!(inst.total_on_minterms() > 0, "{inst} is constant zero");
            for isf in inst.outputs() {
                assert!(isf.is_completely_specified());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().iter().map(|i| i.name().to_string()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
