//! A small, seeded, deterministic pseudo-random number generator.
//!
//! The synthetic instances of this crate (and the randomized checks in the
//! experiment harness) only need reproducible streams, not cryptographic or
//! statistical-suite quality, and the workspace builds without third-party
//! dependencies. This is the SplitMix64 generator (Steele, Lea, Flood,
//! *Fast splittable pseudorandom number generators*, OOPSLA 2014) — the same
//! one `rand` uses to seed `StdRng` from a `u64` — with the handful of
//! convenience methods the workspace actually uses, mirroring the `rand::Rng`
//! names (`gen_range`, `gen_bool`) so call sites read the same.

use std::ops::Range;

/// Deterministic SplitMix64 generator. Two generators constructed with
/// [`DetRng::seed_from_u64`] from the same seed produce identical streams on
/// every platform and in every build profile.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniformly samples an index from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift range reduction (Lemire); the slight non-uniformity
        // for spans that do not divide 2^64 is irrelevant at our span sizes.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi as usize
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // Compare against the top 53 bits so every representable `p` in the
        // open interval behaves sensibly.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// Returns a truth-table mask restricted to `bits` low bits.
    pub fn gen_mask(&mut self, bits: u32) -> u64 {
        if bits >= 64 {
            self.next_u64()
        } else {
            self.next_u64() & ((1u64 << bits) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = DetRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits for p=0.3");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
