use std::fmt;

use boolfunc::{Cube, Isf, Pla, PlaKind, PlaOutputValue, TruthTable};

/// A multi-output benchmark function: a named collection of single-output
/// incompletely specified functions over a common input set.
///
/// ```rust
/// use benchmarks::arithmetic;
///
/// let adr4 = arithmetic::adder("adr4", 4);
/// assert_eq!(adr4.num_inputs(), 8);
/// assert_eq!(adr4.num_outputs(), 5);
/// // Output 0 is the least significant sum bit: x0 ⊕ x4 for inputs 0b0001/0b0000.
/// assert!(adr4.outputs()[0].on().get(0b0000_0001));
/// ```
#[derive(Clone)]
pub struct BenchmarkInstance {
    name: String,
    inputs: usize,
    outputs: Vec<Isf>,
}

impl BenchmarkInstance {
    /// Creates an instance from per-output functions.
    ///
    /// # Panics
    ///
    /// Panics if the outputs do not all share the same number of inputs, or
    /// if there are no outputs.
    pub fn new(name: impl Into<String>, outputs: Vec<Isf>) -> Self {
        assert!(!outputs.is_empty(), "a benchmark needs at least one output");
        let inputs = outputs[0].num_vars();
        for isf in &outputs {
            assert_eq!(isf.num_vars(), inputs, "output arity mismatch");
        }
        BenchmarkInstance { name: name.into(), inputs, outputs }
    }

    /// Builds an instance by evaluating `f(minterm) -> output word` for every
    /// input assignment; output bit `o` of the word becomes output `o`.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs` exceeds the dense-truth-table limit.
    pub fn from_word_fn<F>(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        mut f: F,
    ) -> Self
    where
        F: FnMut(u64) -> u64,
    {
        let mut tables = vec![TruthTable::zero(num_inputs); num_outputs];
        for m in 0..(1u64 << num_inputs) {
            let word = f(m);
            for (o, table) in tables.iter_mut().enumerate() {
                if word >> o & 1 == 1 {
                    table.set(m, true);
                }
            }
        }
        let outputs = tables.into_iter().map(Isf::completely_specified).collect();
        BenchmarkInstance::new(name, outputs)
    }

    /// Benchmark name (paper instance it stands in for).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The per-output incompletely specified functions.
    pub fn outputs(&self) -> &[Isf] {
        &self.outputs
    }

    /// Total number of on-set minterms across outputs (a rough size measure).
    pub fn total_on_minterms(&self) -> u64 {
        self.outputs.iter().map(|o| o.on().count_ones()).sum()
    }

    /// Renders the instance as an `fd`-type PLA (one row per on/dc minterm),
    /// so the pipeline can exercise the same PLA parsing path as the original
    /// flow.
    ///
    /// # Panics
    ///
    /// Panics if the instance is too large to enumerate minterm rows
    /// (intended for the small instances used in tests and examples).
    pub fn to_pla(&self) -> Pla {
        let mut pla = Pla::new(self.inputs, self.outputs.len(), PlaKind::Fd)
            .expect("instance arity already validated");
        for m in 0..(1u64 << self.inputs) {
            let mut row = Vec::with_capacity(self.outputs.len());
            let mut interesting = false;
            for isf in &self.outputs {
                let value = match isf.value(m) {
                    Some(true) => {
                        interesting = true;
                        PlaOutputValue::One
                    }
                    None => {
                        interesting = true;
                        PlaOutputValue::DontCare
                    }
                    Some(false) => PlaOutputValue::Zero,
                };
                row.push(value);
            }
            if interesting {
                let cube = Cube::minterm(self.inputs, m).expect("arity already validated");
                pla.push_row(cube, row);
            }
        }
        pla.set_output_names((0..self.outputs.len()).map(|i| format!("{}_{i}", self.name)));
        pla
    }
}

impl fmt::Debug for BenchmarkInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BenchmarkInstance({}, {}/{}, |on|={})",
            self.name,
            self.inputs,
            self.outputs.len(),
            self.total_on_minterms()
        )
    }
}

impl fmt::Display for BenchmarkInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}/{})", self.name, self.inputs, self.outputs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_word_fn_builds_per_output_tables() {
        // Two-bit adder without carry-in: 4 inputs, 3 outputs.
        let inst = BenchmarkInstance::from_word_fn("tiny-add", 4, 3, |m| {
            let a = m & 0b11;
            let b = (m >> 2) & 0b11;
            a + b
        });
        assert_eq!(inst.num_inputs(), 4);
        assert_eq!(inst.num_outputs(), 3);
        // 3 + 3 = 6 -> outputs 110.
        let m = 0b1111;
        assert!(!inst.outputs()[0].on().get(m));
        assert!(inst.outputs()[1].on().get(m));
        assert!(inst.outputs()[2].on().get(m));
    }

    #[test]
    fn pla_round_trip_preserves_the_functions() {
        let inst = BenchmarkInstance::from_word_fn("tiny", 3, 2, |m| m % 4);
        let pla = inst.to_pla();
        let text = pla.to_string();
        let parsed: Pla = text.parse().unwrap();
        let isfs = parsed.output_isfs().unwrap();
        for (original, reparsed) in inst.outputs().iter().zip(&isfs) {
            assert_eq!(original.on(), reparsed.on());
        }
    }

    #[test]
    fn display_and_debug() {
        let inst = BenchmarkInstance::from_word_fn("demo", 3, 1, |m| u64::from(m == 0));
        assert_eq!(inst.to_string(), "demo (3/1)");
        assert!(format!("{inst:?}").contains("demo"));
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn empty_output_list_is_rejected() {
        let _ = BenchmarkInstance::new("bad", Vec::new());
    }
}
