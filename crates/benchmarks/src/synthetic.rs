//! Synthetic stand-ins for the control-dominated LGSynth91 PLAs.
//!
//! Instances like `br1`, `bcb` or `alcom` are hand-written control tables
//! whose contents cannot be reconstructed from public information, and some
//! of them have more inputs than the dense backend supports. They are
//! replaced by *seeded, deterministic* random covers with a comparable
//! structure: a moderate number of wide cubes (control PLAs have few literals
//! per cube and substantial sharing between outputs). The instance names keep
//! the paper's names so the regenerated tables are easy to compare; the
//! scaled input/output counts are recorded here and in `DESIGN.md`.

use boolfunc::{Cover, Cube, CubeValue, Isf};

use crate::instance::BenchmarkInstance;
use crate::rng::DetRng;

/// Parameters of a synthetic control-PLA generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlPlaSpec {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Number of cubes in the shared cover.
    pub cubes: usize,
    /// Number of literals per cube (roughly).
    pub literals_per_cube: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

/// Generates the deterministic per-output covers of a control-style
/// instance: a pool of random cubes is generated, and every output selects a
/// random subset of the pool (mirroring the cube sharing of real control
/// PLAs).
///
/// This is the representation-agnostic core shared by [`control_pla`] (which
/// densifies the covers into truth tables) and the wide symbolic instances
/// of [`crate::symbolic`] (which build them directly into a BDD manager);
/// covers scale to [`Cube::MAX_VARS`] inputs.
///
/// # Panics
///
/// Panics if `spec.inputs > Cube::MAX_VARS`.
pub fn control_covers(spec: ControlPlaSpec) -> Vec<Cover> {
    assert!(spec.inputs <= Cube::MAX_VARS, "covers address variables with u64 masks");
    let mut rng = DetRng::seed_from_u64(spec.seed);
    let mut pool: Vec<Cube> = Vec::with_capacity(spec.cubes);
    for _ in 0..spec.cubes {
        let mut cube = Cube::full(spec.inputs).expect("arity validated above");
        for _ in 0..spec.literals_per_cube {
            let var = rng.gen_range(0..spec.inputs);
            let value = if rng.gen_bool(0.5) { CubeValue::One } else { CubeValue::Zero };
            cube = cube.with_value(var, value);
        }
        pool.push(cube);
    }
    let mut covers = Vec::with_capacity(spec.outputs);
    for _ in 0..spec.outputs {
        let mut cover = Cover::empty(spec.inputs);
        for cube in &pool {
            if rng.gen_bool(0.4) {
                cover.push(*cube);
            }
        }
        // Guarantee a non-trivial output.
        if cover.is_empty() {
            cover.push(pool[rng.gen_range(0..pool.len())]);
        }
        covers.push(cover);
    }
    covers
}

/// Generates a deterministic control-style multi-output instance from
/// [`control_covers`], densified into the truth-table backend.
pub fn control_pla(name: &str, spec: ControlPlaSpec) -> BenchmarkInstance {
    assert!(spec.inputs <= 16, "dense synthetic instances are kept within the dense backend");
    let outputs = control_covers(spec)
        .iter()
        .map(|cover| Isf::from_covers(cover, &Cover::empty(spec.inputs)))
        .collect();
    BenchmarkInstance::new(name, outputs)
}

/// The synthetic stand-ins used for the low-error-rate suite (Table III).
/// Input/output counts follow the paper where they fit the dense backend and
/// are scaled down otherwise (the scaling is part of the documented
/// substitution).
pub fn table3_instances() -> Vec<BenchmarkInstance> {
    vec![
        control_pla(
            "bcb",
            ControlPlaSpec { inputs: 12, outputs: 8, cubes: 40, literals_per_cube: 5, seed: 0xB0B },
        ),
        control_pla(
            "br1",
            ControlPlaSpec { inputs: 12, outputs: 8, cubes: 20, literals_per_cube: 6, seed: 0xB21 },
        ),
        control_pla(
            "br2",
            ControlPlaSpec { inputs: 12, outputs: 8, cubes: 16, literals_per_cube: 6, seed: 0xB22 },
        ),
        control_pla(
            "mp2d",
            ControlPlaSpec {
                inputs: 12,
                outputs: 10,
                cubes: 18,
                literals_per_cube: 7,
                seed: 0x32D,
            },
        ),
        control_pla(
            "alcom",
            ControlPlaSpec {
                inputs: 12,
                outputs: 10,
                cubes: 24,
                literals_per_cube: 6,
                seed: 0xA1C,
            },
        ),
        control_pla(
            "spla",
            ControlPlaSpec {
                inputs: 12,
                outputs: 10,
                cubes: 44,
                literals_per_cube: 5,
                seed: 0x5B1,
            },
        ),
        control_pla(
            "al2",
            ControlPlaSpec {
                inputs: 12,
                outputs: 10,
                cubes: 26,
                literals_per_cube: 6,
                seed: 0xA12,
            },
        ),
        control_pla(
            "ex5",
            ControlPlaSpec { inputs: 8, outputs: 12, cubes: 32, literals_per_cube: 4, seed: 0xE5 },
        ),
        control_pla(
            "newtpla2",
            ControlPlaSpec { inputs: 10, outputs: 4, cubes: 10, literals_per_cube: 5, seed: 0x17 },
        ),
        control_pla(
            "ts10",
            ControlPlaSpec { inputs: 12, outputs: 8, cubes: 30, literals_per_cube: 5, seed: 0x751 },
        ),
        control_pla(
            "chkn",
            ControlPlaSpec { inputs: 12, outputs: 7, cubes: 34, literals_per_cube: 6, seed: 0xC4E },
        ),
        control_pla(
            "opa",
            ControlPlaSpec {
                inputs: 12,
                outputs: 10,
                cubes: 36,
                literals_per_cube: 5,
                seed: 0x0FA,
            },
        ),
        control_pla(
            "b7",
            ControlPlaSpec { inputs: 8, outputs: 8, cubes: 18, literals_per_cube: 4, seed: 0xB7 },
        ),
        control_pla(
            "risc",
            ControlPlaSpec { inputs: 8, outputs: 8, cubes: 20, literals_per_cube: 4, seed: 0x815 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec =
            ControlPlaSpec { inputs: 8, outputs: 3, cubes: 10, literals_per_cube: 4, seed: 42 };
        let a = control_pla("x", spec);
        let b = control_pla("x", spec);
        for (oa, ob) in a.outputs().iter().zip(b.outputs()) {
            assert_eq!(oa.on(), ob.on());
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = control_pla(
            "x",
            ControlPlaSpec { inputs: 8, outputs: 2, cubes: 10, literals_per_cube: 4, seed: 1 },
        );
        let b = control_pla(
            "x",
            ControlPlaSpec { inputs: 8, outputs: 2, cubes: 10, literals_per_cube: 4, seed: 2 },
        );
        assert_ne!(a.outputs()[0].on(), b.outputs()[0].on());
    }

    #[test]
    fn table3_suite_has_the_paper_instances() {
        let suite = table3_instances();
        assert_eq!(suite.len(), 14);
        let names: Vec<&str> = suite.iter().map(|i| i.name()).collect();
        for expected in ["bcb", "br1", "br2", "spla", "risc", "opa"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        for inst in &suite {
            assert!(inst.num_inputs() <= 12);
            assert!(inst.total_on_minterms() > 0);
        }
    }
}
