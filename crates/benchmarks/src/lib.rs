//! # benchmarks
//!
//! Stand-ins for the LGSynth91 instances used in Tables III and IV of the
//! paper.
//!
//! The original `.pla` files are not redistributed here. Two families of
//! replacements are generated instead (see `DESIGN.md` for the substitution
//! rationale):
//!
//! * [`arithmetic`] — instances whose behaviour is a public arithmetic
//!   function (`adr4`, `add6`, `radd`, `z4`, `dist`, `clip`, `log8mod`,
//!   `Z5xp1`, `max512`, `max1024`, `ex7`-like): these are regenerated exactly
//!   from their arithmetic definition, scaled where necessary to stay inside
//!   the dense-truth-table backend;
//! * [`synthetic`] — control-dominated PLAs (`br1`, `bcb`, `alcom`, …) that
//!   cannot be reconstructed from public information: seeded, deterministic
//!   random covers with a comparable number of inputs, outputs and cubes.
//!
//! Every instance is exposed as a [`BenchmarkInstance`] (a named list of
//! per-output incompletely specified functions plus a PLA rendering), and
//! [`Suite`] groups them the way the paper's tables do.
//!
//! A third family, [`symbolic`], describes 24–40 input instances the dense
//! backend cannot represent at all; they are built directly into a BDD
//! manager by the engine's symbolic backend and grouped by
//! [`Suite::large`].
//!
//! Finally, [`fuzz`] generates seeded random ISF corpora for the
//! cross-backend correctness fuzzer (`oracle_fuzz`): deterministic
//! single-output instances with varied arity and dc-set density.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arithmetic;
pub mod fuzz;
mod instance;
pub mod rng;
mod suite;
pub mod symbolic;
pub mod synthetic;

pub use instance::BenchmarkInstance;
pub use rng::DetRng;
pub use suite::{Suite, SuiteEntry};
pub use symbolic::{SymbolicFunction, SymbolicInstance};
