use crate::arithmetic;
use crate::instance::BenchmarkInstance;
use crate::symbolic::{self, SymbolicInstance};
use crate::synthetic;

/// The benchmark suites used by the experiment harness, mirroring the split
/// of the paper's evaluation: Table III groups the instances whose
/// approximation error rate stays below 10%, Table IV the ones above 40%.
///
/// A suite carries two instance lists: the dense [`Suite::instances`]
/// (truth-table backed, the paper's scale) and the symbolic
/// [`Suite::symbolic_instances`] (24–40 inputs, BDD backend only). Most
/// suites have only dense instances; [`Suite::large`] has only symbolic
/// ones.
///
/// ```rust
/// use benchmarks::Suite;
///
/// let t4 = Suite::table4();
/// assert!(t4.instances().iter().any(|i| i.name() == "adr4"));
/// assert!(Suite::by_name("clip").is_some());
/// assert!(!Suite::large().symbolic_instances().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    name: String,
    instances: Vec<BenchmarkInstance>,
    symbolic: Vec<SymbolicInstance>,
}

impl Suite {
    /// The control-dominated suite corresponding to Table III (synthetic
    /// stand-ins; see the crate documentation for the substitution note).
    pub fn table3() -> Self {
        Suite {
            name: "table3".to_string(),
            instances: synthetic::table3_instances(),
            symbolic: Vec::new(),
        }
    }

    /// The arithmetic suite corresponding to Table IV (regenerated from the
    /// arithmetic definitions).
    pub fn table4() -> Self {
        Suite { name: "table4".to_string(), instances: arithmetic::all(), symbolic: Vec::new() }
    }

    /// Both suites concatenated.
    pub fn all() -> Self {
        let mut instances = synthetic::table3_instances();
        instances.extend(arithmetic::all());
        Suite { name: "all".to_string(), instances, symbolic: Vec::new() }
    }

    /// The symbolic large-`n` suite: 24–40 input instances beyond the dense
    /// backend, swept only by the BDD backend.
    pub fn large() -> Self {
        Suite {
            name: "large".to_string(),
            instances: Vec::new(),
            symbolic: symbolic::large_instances(),
        }
    }

    /// A small suite (few inputs, few outputs) used by the integration tests
    /// and the quickstart example so they stay fast in debug builds.
    pub fn smoke() -> Self {
        Suite {
            name: "smoke".to_string(),
            instances: vec![
                arithmetic::adder("adr2", 2),
                arithmetic::z4(),
                synthetic::control_pla(
                    "ctrl6",
                    synthetic::ControlPlaSpec {
                        inputs: 6,
                        outputs: 3,
                        cubes: 8,
                        literals_per_cube: 3,
                        seed: 7,
                    },
                ),
            ],
            symbolic: Vec::new(),
        }
    }

    /// Suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dense (truth-table backed) instances of the suite.
    pub fn instances(&self) -> &[BenchmarkInstance] {
        &self.instances
    }

    /// The symbolic (BDD-only) instances of the suite.
    pub fn symbolic_instances(&self) -> &[SymbolicInstance] {
        &self.symbolic
    }

    /// Looks up a dense instance of any suite by its paper name (see
    /// [`Suite::lookup`] for a resolver that also finds the symbolic
    /// large-`n` instances).
    pub fn by_name(name: &str) -> Option<BenchmarkInstance> {
        Suite::all().instances.into_iter().find(|i| i.name() == name)
    }

    /// Looks up a symbolic instance of the [`Suite::large`] suite by name.
    pub fn symbolic_by_name(name: &str) -> Option<SymbolicInstance> {
        Suite::large().symbolic.into_iter().find(|i| i.name() == name)
    }

    /// Unified name resolution across both instance kinds: the dense
    /// Table III/IV instances first, then the symbolic 24–40 input
    /// instances of [`Suite::large`]. Names are disjoint across the two
    /// lists, so the order never shadows anything.
    ///
    /// ```rust
    /// use benchmarks::{Suite, SuiteEntry};
    ///
    /// assert!(matches!(Suite::lookup("adr4"), Some(SuiteEntry::Dense(_))));
    /// assert!(matches!(Suite::lookup("carry40"), Some(SuiteEntry::Symbolic(_))));
    /// assert!(Suite::lookup("not-a-benchmark").is_none());
    /// ```
    pub fn lookup(name: &str) -> Option<SuiteEntry> {
        if let Some(dense) = Suite::by_name(name) {
            return Some(SuiteEntry::Dense(dense));
        }
        Suite::symbolic_by_name(name).map(SuiteEntry::Symbolic)
    }
}

/// A name-resolved benchmark instance of either representation, from
/// [`Suite::lookup`].
#[derive(Debug, Clone)]
pub enum SuiteEntry {
    /// A dense (truth-table backed) instance.
    Dense(BenchmarkInstance),
    /// A symbolic (BDD-only, 24–40 input) instance.
    Symbolic(SymbolicInstance),
}

impl SuiteEntry {
    /// The instance name.
    pub fn name(&self) -> &str {
        match self {
            SuiteEntry::Dense(inst) => inst.name(),
            SuiteEntry::Symbolic(inst) => inst.name(),
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        match self {
            SuiteEntry::Dense(inst) => inst.num_inputs(),
            SuiteEntry::Symbolic(inst) => inst.num_inputs(),
        }
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        match self {
            SuiteEntry::Dense(inst) => inst.num_outputs(),
            SuiteEntry::Symbolic(inst) => inst.num_outputs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper_tables() {
        assert_eq!(Suite::table3().instances().len(), 14);
        assert_eq!(Suite::table4().instances().len(), 11);
        assert_eq!(Suite::all().instances().len(), 25);
    }

    #[test]
    fn lookup_by_name() {
        assert!(Suite::by_name("adr4").is_some());
        assert!(Suite::by_name("bcb").is_some());
        assert!(Suite::by_name("not-a-benchmark").is_none());
        // Symbolic names are not dense instances.
        assert!(Suite::by_name("carry32").is_none());
    }

    #[test]
    fn unified_lookup_resolves_both_instance_kinds() {
        // Every dense instance resolves as Dense...
        for inst in Suite::all().instances() {
            match Suite::lookup(inst.name()) {
                Some(SuiteEntry::Dense(found)) => {
                    assert_eq!(found.name(), inst.name());
                    assert_eq!(found.num_inputs(), inst.num_inputs());
                }
                other => panic!("{}: expected a dense entry, got {other:?}", inst.name()),
            }
        }
        // ...and every symbolic instance of the large suite as Symbolic.
        for inst in Suite::large().symbolic_instances() {
            match Suite::lookup(inst.name()) {
                Some(SuiteEntry::Symbolic(found)) => {
                    assert_eq!(found.name(), inst.name());
                    assert_eq!(found.num_inputs(), inst.num_inputs());
                    assert_eq!(found.num_outputs(), inst.num_outputs());
                    assert!(found.num_inputs() >= 24);
                }
                other => panic!("{}: expected a symbolic entry, got {other:?}", inst.name()),
            }
            assert!(Suite::symbolic_by_name(inst.name()).is_some());
        }
        assert!(Suite::lookup("not-a-benchmark").is_none());
        // The two name spaces stay disjoint.
        for inst in Suite::large().symbolic_instances() {
            assert!(Suite::by_name(inst.name()).is_none(), "{} is shadowed", inst.name());
        }
    }

    #[test]
    fn smoke_suite_is_small() {
        for inst in Suite::smoke().instances() {
            assert!(inst.num_inputs() <= 7);
        }
    }

    #[test]
    fn every_instance_fits_the_dense_backend() {
        for inst in Suite::all().instances() {
            assert!(inst.num_inputs() <= boolfunc::TruthTable::MAX_VARS);
        }
    }
}
