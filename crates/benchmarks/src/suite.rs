use crate::arithmetic;
use crate::instance::BenchmarkInstance;
use crate::symbolic::{self, SymbolicInstance};
use crate::synthetic;

/// The benchmark suites used by the experiment harness, mirroring the split
/// of the paper's evaluation: Table III groups the instances whose
/// approximation error rate stays below 10%, Table IV the ones above 40%.
///
/// A suite carries two instance lists: the dense [`Suite::instances`]
/// (truth-table backed, the paper's scale) and the symbolic
/// [`Suite::symbolic_instances`] (24–40 inputs, BDD backend only). Most
/// suites have only dense instances; [`Suite::large`] has only symbolic
/// ones.
///
/// ```rust
/// use benchmarks::Suite;
///
/// let t4 = Suite::table4();
/// assert!(t4.instances().iter().any(|i| i.name() == "adr4"));
/// assert!(Suite::by_name("clip").is_some());
/// assert!(!Suite::large().symbolic_instances().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    name: String,
    instances: Vec<BenchmarkInstance>,
    symbolic: Vec<SymbolicInstance>,
}

impl Suite {
    /// The control-dominated suite corresponding to Table III (synthetic
    /// stand-ins; see the crate documentation for the substitution note).
    pub fn table3() -> Self {
        Suite {
            name: "table3".to_string(),
            instances: synthetic::table3_instances(),
            symbolic: Vec::new(),
        }
    }

    /// The arithmetic suite corresponding to Table IV (regenerated from the
    /// arithmetic definitions).
    pub fn table4() -> Self {
        Suite { name: "table4".to_string(), instances: arithmetic::all(), symbolic: Vec::new() }
    }

    /// Both suites concatenated.
    pub fn all() -> Self {
        let mut instances = synthetic::table3_instances();
        instances.extend(arithmetic::all());
        Suite { name: "all".to_string(), instances, symbolic: Vec::new() }
    }

    /// The symbolic large-`n` suite: 24–40 input instances beyond the dense
    /// backend, swept only by the BDD backend.
    pub fn large() -> Self {
        Suite {
            name: "large".to_string(),
            instances: Vec::new(),
            symbolic: symbolic::large_instances(),
        }
    }

    /// A small suite (few inputs, few outputs) used by the integration tests
    /// and the quickstart example so they stay fast in debug builds.
    pub fn smoke() -> Self {
        Suite {
            name: "smoke".to_string(),
            instances: vec![
                arithmetic::adder("adr2", 2),
                arithmetic::z4(),
                synthetic::control_pla(
                    "ctrl6",
                    synthetic::ControlPlaSpec {
                        inputs: 6,
                        outputs: 3,
                        cubes: 8,
                        literals_per_cube: 3,
                        seed: 7,
                    },
                ),
            ],
            symbolic: Vec::new(),
        }
    }

    /// Suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dense (truth-table backed) instances of the suite.
    pub fn instances(&self) -> &[BenchmarkInstance] {
        &self.instances
    }

    /// The symbolic (BDD-only) instances of the suite.
    pub fn symbolic_instances(&self) -> &[SymbolicInstance] {
        &self.symbolic
    }

    /// Looks up a dense instance of any suite by its paper name.
    pub fn by_name(name: &str) -> Option<BenchmarkInstance> {
        Suite::all().instances.into_iter().find(|i| i.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper_tables() {
        assert_eq!(Suite::table3().instances().len(), 14);
        assert_eq!(Suite::table4().instances().len(), 11);
        assert_eq!(Suite::all().instances().len(), 25);
    }

    #[test]
    fn lookup_by_name() {
        assert!(Suite::by_name("adr4").is_some());
        assert!(Suite::by_name("bcb").is_some());
        assert!(Suite::by_name("not-a-benchmark").is_none());
    }

    #[test]
    fn smoke_suite_is_small() {
        for inst in Suite::smoke().instances() {
            assert!(inst.num_inputs() <= 7);
        }
    }

    #[test]
    fn every_instance_fits_the_dense_backend() {
        for inst in Suite::all().instances() {
            assert!(inst.num_inputs() <= boolfunc::TruthTable::MAX_VARS);
        }
    }
}
