//! Symbolic (BDD-backed) benchmark instances for arities beyond the dense
//! truth-table limit.
//!
//! A dense [`crate::BenchmarkInstance`] stores `2^n` bits per output, which
//! caps it at [`TruthTable::MAX_VARS`] inputs. The instances here are
//! *descriptions* instead — covers and structural function families whose
//! BDDs stay small at 24–40 variables — and are materialized directly into a
//! [`BddManager`] by the engine's BDD backend. At small arities the same
//! descriptions can be densified ([`SymbolicInstance::to_dense`]), which is
//! how the property tests pin the symbolic backend bit-identical to the
//! dense one.

use bdd::{Bdd, BddManager, BddOps};
use boolfunc::{Cover, Isf, TruthTable};

use crate::instance::BenchmarkInstance;
use crate::synthetic::{control_covers, ControlPlaSpec};

/// One output of a [`SymbolicInstance`]: an incompletely specified function
/// given by a construction rule rather than a dense table.
#[derive(Debug, Clone)]
pub enum SymbolicFunction {
    /// An ISF given by an on-set cover and a (possibly overlapping) dc-set
    /// cover; the dc-set is taken as `dc \ on` so the pair is a valid ISF.
    CoverIsf {
        /// Cover of the on-set.
        on: Cover,
        /// Cover of the don't-care set (minterms also in `on` stay on).
        dc: Cover,
    },
    /// Carry-out of a ripple adder over `2·bits` inputs, with the operands
    /// interleaved (`a_i` = variable `2i`, `b_i` = variable `2i+1` — the
    /// ordering under which the carry BDD is linear in `bits`; the blocked
    /// ordering would be exponential). Completely specified; its minimal SOP
    /// is exponential regardless.
    AdderCarry,
    /// XOR of all inputs — the classic function whose BDD is linear but
    /// whose dense table has `2^(n-1)` on-minterms. Completely specified.
    Parity,
    /// `1` iff at least `k` of the inputs are `1` (a threshold/majority
    /// function; BDD size `O(n·k)`). Completely specified.
    Threshold {
        /// Minimum number of inputs that must be 1.
        k: usize,
    },
}

/// A named multi-output benchmark whose outputs are [`SymbolicFunction`]s
/// over a common input set.
#[derive(Debug, Clone)]
pub struct SymbolicInstance {
    name: String,
    inputs: usize,
    outputs: Vec<SymbolicFunction>,
}

impl SymbolicInstance {
    /// Creates an instance from per-output function descriptions.
    ///
    /// # Panics
    ///
    /// Panics if there are no outputs, if `inputs` exceeds 63 (the BDD
    /// manager's minterm addressing), or if a cover output has a different
    /// arity.
    pub fn new(name: impl Into<String>, inputs: usize, outputs: Vec<SymbolicFunction>) -> Self {
        assert!(!outputs.is_empty(), "a benchmark needs at least one output");
        assert!(inputs < 64, "symbolic instances address minterms with u64 words");
        for f in &outputs {
            if let SymbolicFunction::CoverIsf { on, dc } = f {
                assert_eq!(on.num_vars(), inputs, "on-cover arity mismatch");
                assert_eq!(dc.num_vars(), inputs, "dc-cover arity mismatch");
            }
        }
        SymbolicInstance { name: name.into(), inputs, outputs }
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The per-output descriptions.
    pub fn outputs(&self) -> &[SymbolicFunction] {
        &self.outputs
    }

    /// Builds output `output` into `mgr`, returning the `(on, dc)` BDD pair
    /// of the incompletely specified function.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or the manager has fewer variables
    /// than the instance has inputs (a *wider* manager is allowed: a shared
    /// store serves jobs of mixed arities, and the built function is simply
    /// independent of the extra variables).
    pub fn build_output<M: BddOps>(&self, mgr: &mut M, output: usize) -> (Bdd, Bdd) {
        assert!(mgr.num_vars() >= self.inputs, "manager is narrower than the instance");
        match &self.outputs[output] {
            SymbolicFunction::CoverIsf { on, dc } => {
                let on_bdd = mgr.cover(on);
                let dc_raw = mgr.cover(dc);
                let dc_bdd = mgr.diff(dc_raw, on_bdd);
                (on_bdd, dc_bdd)
            }
            SymbolicFunction::AdderCarry => {
                let bits = self.inputs / 2;
                let mut carry = mgr.zero();
                for i in 0..bits {
                    let a = mgr.variable(2 * i);
                    let b = mgr.variable(2 * i + 1);
                    let gen = mgr.and(a, b);
                    let axb = mgr.xor(a, b);
                    let prop = mgr.and(axb, carry);
                    carry = mgr.or(gen, prop);
                }
                (carry, mgr.zero())
            }
            SymbolicFunction::Parity => {
                let mut parity = mgr.zero();
                for i in 0..self.inputs {
                    let x = mgr.variable(i);
                    parity = mgr.xor(parity, x);
                }
                (parity, mgr.zero())
            }
            SymbolicFunction::Threshold { k } => {
                // ge[j] = "at least j ones among the inputs processed so
                // far"; one ITE per (variable, j) pair keeps this O(n·k).
                let k = *k;
                let mut ge: Vec<Bdd> =
                    (0..=k).map(|j| if j == 0 { mgr.one() } else { mgr.zero() }).collect();
                for i in 0..self.inputs {
                    let x = mgr.variable(i);
                    for j in (1..=k).rev() {
                        ge[j] = mgr.ite(x, ge[j - 1], ge[j]);
                    }
                }
                (ge[k], mgr.zero())
            }
        }
    }

    /// Densifies the instance into a [`BenchmarkInstance`] — only possible
    /// at arities the dense backend supports; returns `None` beyond
    /// [`TruthTable::MAX_VARS`] inputs.
    ///
    /// The densification goes through the same [`SymbolicInstance::build_output`]
    /// path the engine uses, so it cannot drift from the symbolic semantics.
    pub fn to_dense(&self) -> Option<BenchmarkInstance> {
        if self.inputs > TruthTable::MAX_VARS {
            return None;
        }
        let mut mgr = BddManager::new(self.inputs);
        let outputs = (0..self.outputs.len())
            .map(|o| {
                let (on, dc) = self.build_output(&mut mgr, o);
                let on_tt = mgr.to_truth_table(on).expect("arity checked above");
                let dc_tt = mgr.to_truth_table(dc).expect("arity checked above");
                Isf::new(on_tt, dc_tt).expect("build_output returns disjoint on/dc")
            })
            .collect();
        Some(BenchmarkInstance::new(self.name.clone(), outputs))
    }
}

/// A deterministic, seed-stable "noise" cover over `num_vars` inputs: the
/// symbolic counterpart of the random word stream the dense
/// `seeded_divisor` uses. Its BDD stays small (a few wide cubes) at any
/// arity the cube representation supports.
pub fn noise_cover(num_vars: usize, seed: u64) -> Cover {
    let literals = (num_vars / 4).clamp(3, 10);
    let covers = control_covers(ControlPlaSpec {
        inputs: num_vars,
        outputs: 1,
        cubes: 12,
        literals_per_cube: literals,
        seed,
    });
    covers.into_iter().next().expect("one output requested")
}

/// The symbolic large-`n` suite: 24–40 input instances the dense backend
/// cannot (or should not) represent, exercising every structural family.
pub fn large_instances() -> Vec<SymbolicInstance> {
    let mut instances = Vec::new();
    for (name, inputs, outputs, cubes, seed) in
        [("wide_ctrl24", 24usize, 3usize, 26usize, 0xC24u64), ("wide_ctrl32", 32, 3, 30, 0xC32)]
    {
        // Interleave on/dc covers from one deterministic stream: output o
        // uses covers 2o (on) and 2o+1 (dc).
        let covers = control_covers(ControlPlaSpec {
            inputs,
            outputs: outputs * 2,
            cubes,
            literals_per_cube: inputs / 3,
            seed,
        });
        let outputs = covers
            .chunks(2)
            .map(|pair| SymbolicFunction::CoverIsf { on: pair[0].clone(), dc: pair[1].clone() })
            .collect();
        instances.push(SymbolicInstance::new(name, inputs, outputs));
    }
    instances.push(SymbolicInstance::new("carry32", 32, vec![SymbolicFunction::AdderCarry]));
    instances.push(SymbolicInstance::new(
        "carry40",
        40,
        vec![SymbolicFunction::AdderCarry, SymbolicFunction::Parity],
    ));
    instances.push(SymbolicInstance::new(
        "thresh28",
        28,
        vec![SymbolicFunction::Threshold { k: 14 }, SymbolicFunction::Parity],
    ));
    instances
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_carry_matches_arithmetic_at_small_arity() {
        let inst = SymbolicInstance::new("c8", 8, vec![SymbolicFunction::AdderCarry]);
        let dense = inst.to_dense().unwrap();
        let carry = &dense.outputs()[0];
        for m in 0..256u64 {
            // Operands are interleaved: a_i = bit 2i, b_i = bit 2i+1.
            let mut a = 0u64;
            let mut b = 0u64;
            for i in 0..4 {
                a |= (m >> (2 * i) & 1) << i;
                b |= (m >> (2 * i + 1) & 1) << i;
            }
            assert_eq!(carry.on().get(m), a + b > 0xF, "minterm {m}");
        }
    }

    #[test]
    fn parity_and_threshold_match_popcount_semantics() {
        let inst = SymbolicInstance::new(
            "pt6",
            6,
            vec![SymbolicFunction::Parity, SymbolicFunction::Threshold { k: 3 }],
        );
        let dense = inst.to_dense().unwrap();
        for m in 0..64u64 {
            assert_eq!(dense.outputs()[0].on().get(m), m.count_ones() % 2 == 1);
            assert_eq!(dense.outputs()[1].on().get(m), m.count_ones() >= 3);
        }
    }

    #[test]
    fn cover_isf_outputs_are_disjoint() {
        let covers = control_covers(ControlPlaSpec {
            inputs: 10,
            outputs: 2,
            cubes: 12,
            literals_per_cube: 4,
            seed: 99,
        });
        let inst = SymbolicInstance::new(
            "c10",
            10,
            vec![SymbolicFunction::CoverIsf { on: covers[0].clone(), dc: covers[1].clone() }],
        );
        let dense = inst.to_dense().unwrap();
        let isf = &dense.outputs()[0];
        // The on-set is exactly the on-cover; the dc-set lost any overlap.
        assert_eq!(isf.on(), &covers[0].to_truth_table());
        assert!(isf.on().is_disjoint_from(isf.dc()));
    }

    #[test]
    fn large_suite_exceeds_the_dense_limit() {
        let instances = large_instances();
        assert!(instances.iter().any(|i| i.num_inputs() > TruthTable::MAX_VARS));
        assert!(instances.iter().any(|i| i.num_inputs() >= 40));
        for inst in &instances {
            assert!(inst.num_inputs() >= 24, "{} is not large", inst.name());
            // Every output builds into a manager without blowing up.
            let mut mgr = BddManager::new(inst.num_inputs());
            for o in 0..inst.num_outputs() {
                let (on, dc) = inst.build_output(&mut mgr, o);
                let both = mgr.and(on, dc);
                assert!(mgr.is_zero(both), "{} output {o}: on ∩ dc ≠ ∅", inst.name());
                assert!(!mgr.is_zero(on), "{} output {o} is trivially 0", inst.name());
            }
            assert!(mgr.num_nodes() < 200_000, "{}: BDD blow-up", inst.name());
        }
    }

    #[test]
    fn noise_cover_is_seed_stable() {
        let a = noise_cover(32, 7);
        let b = noise_cover(32, 7);
        let c = noise_cover(32, 8);
        assert_eq!(a.num_cubes(), b.num_cubes());
        for (ca, cb) in a.iter().zip(b.iter()) {
            assert_eq!(ca, cb);
        }
        let differs = a.num_cubes() != c.num_cubes() || a.iter().zip(c.iter()).any(|(x, y)| x != y);
        assert!(differs, "different seeds must give different noise");
    }
}
