//! Technology-independent decomposition of a [`Network`] into an AIG
//! (AND/INV graph), the subject-graph form classical mappers start from.
//!
//! The mapper in this crate works directly on the AND/OR/XOR/NOT network (it
//! recognises NAND/NOR/XNOR peepholes), but the AIG size is still a useful
//! technology-independent cost and serves as an ablation baseline for the
//! area model.

use std::collections::HashMap;

use crate::network::{Network, NodeId, NodeKind};

/// Converts a network into an AIG: only `Input`, `Const`, `Not` and `And`
/// nodes remain (ORs by De Morgan, XORs by the standard 3-AND expansion).
/// Output markers are carried over.
pub fn to_aig(network: &Network) -> Network {
    let mut aig = Network::new(network.num_inputs());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for index in 0..network.num_nodes() {
        let id = NodeId::from_raw(index as u32);
        let mapped = match network.kind(id) {
            NodeKind::Input(v) => aig.input(v),
            NodeKind::Const(b) => aig.constant(b),
            NodeKind::Not(a) => {
                let a = map[&a];
                aig.not(a)
            }
            NodeKind::And(a, b) => {
                let (a, b) = (map[&a], map[&b]);
                aig.and(a, b)
            }
            NodeKind::Or(a, b) => {
                let (a, b) = (map[&a], map[&b]);
                let na = aig.not(a);
                let nb = aig.not(b);
                let nab = aig.and(na, nb);
                aig.not(nab)
            }
            NodeKind::Xor(a, b) => {
                let (a, b) = (map[&a], map[&b]);
                let na = aig.not(a);
                let nb = aig.not(b);
                let left = aig.and(a, nb);
                let right = aig.and(na, b);
                let nleft = aig.not(left);
                let nright = aig.not(right);
                let both = aig.and(nleft, nright);
                aig.not(both)
            }
        };
        map.insert(id, mapped);
    }
    for &out in network.outputs() {
        let mapped = map[&out];
        aig.add_output(mapped);
    }
    aig
}

/// Number of AND nodes of the AIG of `network` — a classical
/// technology-independent size estimate.
pub fn aig_size(network: &Network) -> usize {
    let aig = to_aig(network);
    (0..aig.num_nodes())
        .filter(|&i| matches!(aig.kind(NodeId::from_raw(i as u32)), NodeKind::And(_, _)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::Cover;

    #[test]
    fn aig_preserves_functionality() {
        let cover = Cover::from_strs(4, &["11-1", "-011", "0-10"]).unwrap();
        let mut net = Network::new(4);
        net.add_cover(&cover);
        let aig = to_aig(&net);
        for m in 0..16u64 {
            assert_eq!(net.eval(m), aig.eval(m), "mismatch on minterm {m}");
        }
    }

    #[test]
    fn aig_has_only_and_inv_nodes() {
        let mut net = Network::new(3);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let x2 = net.input(2);
        let x = net.xor(x0, x1);
        let o = net.or(x, x2);
        net.add_output(o);
        let aig = to_aig(&net);
        for i in 0..aig.num_nodes() {
            let kind = aig.kind(NodeId::from_raw(i as u32));
            assert!(
                !matches!(kind, NodeKind::Or(_, _) | NodeKind::Xor(_, _)),
                "unexpected node {kind:?} in AIG"
            );
        }
        for m in 0..8u64 {
            assert_eq!(net.eval(m), aig.eval(m));
        }
    }

    #[test]
    fn aig_size_grows_with_function_complexity() {
        let mut simple = Network::new(3);
        simple.add_cover(&Cover::from_strs(3, &["1--"]).unwrap());
        let mut complex = Network::new(3);
        complex.add_cover(&Cover::from_strs(3, &["110", "101", "011"]).unwrap());
        assert!(aig_size(&simple) < aig_size(&complex));
    }
}
