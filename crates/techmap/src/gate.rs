use std::fmt;

/// The logic function of a library gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
}

impl GateKind {
    /// Number of inputs of the gate.
    pub fn num_inputs(self) -> usize {
        match self {
            GateKind::Inv => 1,
            GateKind::Nand2
            | GateKind::Nor2
            | GateKind::And2
            | GateKind::Or2
            | GateKind::Xor2
            | GateKind::Xnor2 => 2,
            GateKind::Nand3 => 3,
            GateKind::Nand4 => 4,
        }
    }
}

/// A gate of the technology library: a logic function with an area (and a
/// name used when printing mapped netlists).
///
/// ```rust
/// use techmap::{Gate, GateKind};
///
/// let g = Gate::new("nand2", GateKind::Nand2, 2.0);
/// assert_eq!(g.kind().num_inputs(), 2);
/// assert_eq!(g.area(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    name: String,
    kind: GateKind,
    area: f64,
}

impl Gate {
    /// Creates a gate.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not finite and positive.
    pub fn new<S: Into<String>>(name: S, kind: GateKind, area: f64) -> Self {
        assert!(area.is_finite() && area > 0.0, "gate area must be positive and finite");
        Gate { name: name.into(), kind, area }
    }

    /// Gate name (as it would appear in a genlib file).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logic function of the gate.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Gate area in library units.
    pub fn area(&self) -> f64 {
        self.area
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (area {})", self.name, self.area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_accessors() {
        let g = Gate::new("inv", GateKind::Inv, 1.0);
        assert_eq!(g.name(), "inv");
        assert_eq!(g.kind(), GateKind::Inv);
        assert_eq!(g.area(), 1.0);
        assert_eq!(g.to_string(), "inv (area 1)");
    }

    #[test]
    fn input_counts() {
        assert_eq!(GateKind::Inv.num_inputs(), 1);
        assert_eq!(GateKind::Nand3.num_inputs(), 3);
        assert_eq!(GateKind::Nand4.num_inputs(), 4);
        assert_eq!(GateKind::Xor2.num_inputs(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_is_rejected() {
        let _ = Gate::new("bad", GateKind::Inv, 0.0);
    }
}
