//! # techmap
//!
//! Area estimation by technology mapping, standing in for the
//! `SIS + mcnc.genlib` step of the paper's evaluation (Tables III and IV
//! report gate areas after mapping with `mcnc.genlib`).
//!
//! The flow mirrors the classical tree-covering mapper:
//!
//! 1. a [`Network`] of AND/OR/XOR/NOT nodes is built from an SOP cover, a
//!    2-SPP form, or a bi-decomposition `g op h`;
//! 2. the network is decomposed into an INV/NAND2 *subject graph*
//!    ([`decompose`]);
//! 3. a dynamic-programming tree-covering pass ([`Mapper`]) covers the subject
//!    graph with gates from a [`GateLibrary`] (an embedded `mcnc.genlib`-like
//!    set) and reports the total mapped area.
//!
//! Absolute areas are not comparable with the paper's SIS numbers (different
//! library scaling), but ratios — which is what the paper's "gain" columns
//! report — are, because every form is mapped by the same mapper with the
//! same library.
//!
//! ```rust
//! use boolfunc::Cover;
//! use techmap::AreaModel;
//!
//! # fn main() -> Result<(), boolfunc::BoolFuncError> {
//! let model = AreaModel::mcnc();
//! let small = model.cover_area(&Cover::from_strs(3, &["1--"])?);
//! let large = model.cover_area(&Cover::from_strs(3, &["11-", "1-1", "-11"])?);
//! assert!(small < large);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
pub mod decompose;
mod gate;
mod library;
mod mapper;
mod network;

pub use area::{AreaModel, CombineOp};
pub use gate::{Gate, GateKind};
pub use library::GateLibrary;
pub use mapper::{Mapper, MappingResult};
pub use network::{Network, NodeId, NodeKind};
