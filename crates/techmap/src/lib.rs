//! # techmap
//!
//! Area estimation by technology mapping, standing in for the
//! `SIS + mcnc.genlib` step of the paper's evaluation (Tables III and IV
//! report gate areas after mapping with `mcnc.genlib`).
//!
//! The flow mirrors the classical tree-covering mapper:
//!
//! 1. a [`Network`] of AND/OR/XOR/NOT nodes is built from an SOP cover, a
//!    2-SPP form, or a bi-decomposition `g op h`;
//! 2. the network is decomposed into an INV/NAND2 *subject graph*
//!    ([`decompose`]);
//! 3. a dynamic-programming tree-covering pass ([`Mapper`]) covers the subject
//!    graph with gates from a [`GateLibrary`] (an embedded `mcnc.genlib`-like
//!    set) and reports the total mapped area.
//!
//! Absolute areas are not comparable with the paper's SIS numbers (different
//! library scaling), but ratios — which is what the paper's "gain" columns
//! report — are, because every form is mapped by the same mapper with the
//! same library.
//!
//! ```rust
//! use boolfunc::Cover;
//! use techmap::AreaModel;
//!
//! # fn main() -> Result<(), boolfunc::BoolFuncError> {
//! let model = AreaModel::mcnc();
//! let small = model.cover_area(&Cover::from_strs(3, &["1--"])?);
//! let large = model.cover_area(&Cover::from_strs(3, &["11-", "1-1", "-11"])?);
//! assert!(small < large);
//! # Ok(())
//! # }
//! ```
//!
//! ## Mapping flow details
//!
//! Decomposition ([`decompose`]) rewrites every node into inverters and
//! two-input NANDs — wide ANDs/ORs become balanced NAND trees, XORs become
//! the standard four-NAND pattern — so the subject graph is normalized
//! independently of how the [`Network`] was built. The mapper then walks the
//! subject graph bottom-up; at each node it tries every library gate whose
//! pattern tree matches there (patterns up to AOI/OAI size are enumerated
//! from the gate's NAND/INV decomposition) and keeps the cheapest cover of
//! the subtree. On trees this dynamic program is optimal for the given
//! library; fanout nodes are handled by the usual tree-partitioning
//! heuristic, so multi-output networks are mapped tree by tree.
//!
//! [`AreaModel`] packages the three mappings the paper's tables need —
//! `cover_area` for SOP forms, `spp_area` for 2-SPP forms (XOR factors map
//! to the library's XOR2/XNOR2 gates), and `bidecomposition_area` for
//! `g op h` with the top gate accounted ([`CombineOp`]) — so callers compare
//! areas without touching [`Network`] construction themselves.
//!
//! ```rust
//! use techmap::{GateLibrary, Mapper, Network};
//!
//! // f = (x0 ∧ x1) ∨ x2, built and mapped by hand.
//! let mut net = Network::new(3);
//! let x0 = net.input(0);
//! let x1 = net.input(1);
//! let x2 = net.input(2);
//! let a = net.and(x0, x1);
//! let f = net.or(a, x2);
//! net.add_output(f);
//! let result = Mapper::new(GateLibrary::mcnc()).map(&net);
//! assert!(result.area > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
pub mod decompose;
mod gate;
mod library;
mod mapper;
mod network;

pub use area::{AreaModel, CombineOp};
pub use gate::{Gate, GateKind};
pub use library::GateLibrary;
pub use mapper::{Mapper, MappingResult};
pub use network::{Network, NodeId, NodeKind};
