use std::fmt;

use crate::gate::{Gate, GateKind};

/// A technology library: a set of [`Gate`]s the mapper may instantiate.
///
/// [`GateLibrary::mcnc`] returns an embedded library with the gate set and
/// the relative areas of the classical `mcnc.genlib` used by SIS (scaled so
/// that an inverter has area 1).
///
/// ```rust
/// use techmap::{GateLibrary, GateKind};
///
/// let lib = GateLibrary::mcnc();
/// assert!(lib.best(GateKind::Nand2).is_some());
/// assert!(lib.best(GateKind::Xor2).unwrap().area() > lib.best(GateKind::Nand2).unwrap().area());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GateLibrary {
    name: String,
    gates: Vec<Gate>,
}

impl GateLibrary {
    /// Creates an empty library with a name.
    pub fn new<S: Into<String>>(name: S) -> Self {
        GateLibrary { name: name.into(), gates: Vec::new() }
    }

    /// The embedded `mcnc.genlib`-like library (areas relative to an inverter).
    ///
    /// The original genlib measures areas in layout units where `inv = 928`,
    /// `nand2 = 1392`, `xor = 2896`, …; the ratios below are those ratios
    /// rounded to convenient values, which is all the gain computation needs.
    pub fn mcnc() -> Self {
        let mut lib = GateLibrary::new("mcnc");
        lib.add(Gate::new("inv", GateKind::Inv, 1.0));
        lib.add(Gate::new("nand2", GateKind::Nand2, 1.5));
        lib.add(Gate::new("nand3", GateKind::Nand3, 2.0));
        lib.add(Gate::new("nand4", GateKind::Nand4, 2.5));
        lib.add(Gate::new("nor2", GateKind::Nor2, 1.5));
        lib.add(Gate::new("and2", GateKind::And2, 2.0));
        lib.add(Gate::new("or2", GateKind::Or2, 2.0));
        lib.add(Gate::new("xor2", GateKind::Xor2, 3.0));
        lib.add(Gate::new("xnor2", GateKind::Xnor2, 3.0));
        lib
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a gate to the library.
    pub fn add(&mut self, gate: Gate) {
        self.gates.push(gate);
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The cheapest gate implementing `kind`, if any.
    pub fn best(&self, kind: GateKind) -> Option<&Gate> {
        self.gates
            .iter()
            .filter(|g| g.kind() == kind)
            .min_by(|a, b| a.area().partial_cmp(&b.area()).expect("areas are finite"))
    }

    /// The area of the cheapest gate implementing `kind`, or `None`.
    pub fn area_of(&self, kind: GateKind) -> Option<f64> {
        self.best(kind).map(Gate::area)
    }
}

impl fmt::Display for GateLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library {} with {} gates", self.name, self.gates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcnc_has_all_kinds_the_mapper_needs() {
        let lib = GateLibrary::mcnc();
        for kind in [
            GateKind::Inv,
            GateKind::Nand2,
            GateKind::Nand3,
            GateKind::Nand4,
            GateKind::Nor2,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Xor2,
            GateKind::Xnor2,
        ] {
            assert!(lib.best(kind).is_some(), "missing {kind:?}");
        }
    }

    #[test]
    fn best_picks_the_cheapest_variant() {
        let mut lib = GateLibrary::new("test");
        lib.add(Gate::new("nand2_slow", GateKind::Nand2, 2.0));
        lib.add(Gate::new("nand2_small", GateKind::Nand2, 1.0));
        assert_eq!(lib.best(GateKind::Nand2).unwrap().name(), "nand2_small");
        assert_eq!(lib.area_of(GateKind::Nand2), Some(1.0));
        assert_eq!(lib.area_of(GateKind::Xor2), None);
    }

    #[test]
    fn display() {
        assert!(GateLibrary::mcnc().to_string().contains("mcnc"));
    }
}
