use std::collections::HashMap;
use std::fmt;

use boolfunc::{Cover, CubeValue};
use spp::{SppForm, XorFactor};

use crate::area::CombineOp;

/// Identifier of a node inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index (useful for debugging).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index (crate-internal: node ids are plain
    /// positions in creation order).
    pub(crate) fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// Kind of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input `x_i`.
    Input(usize),
    /// Constant 0 or 1.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
}

/// A multi-level combinational logic network over AND/OR/XOR/NOT nodes with
/// structural hashing (identical sub-expressions are shared).
///
/// This is the technology-independent netlist handed to the mapper; it is
/// built from SOP covers, 2-SPP forms, or a bi-decomposition `g op h`.
///
/// ```rust
/// use techmap::Network;
///
/// let mut net = Network::new(3);
/// let x0 = net.input(0);
/// let x1 = net.input(1);
/// let x2 = net.input(2);
/// let a = net.and(x0, x1);
/// let f = net.or(a, x2);
/// net.add_output(f);
/// assert_eq!(net.eval(0b100), vec![true]);
/// assert_eq!(net.gate_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    num_inputs: usize,
    nodes: Vec<NodeKind>,
    hash: HashMap<NodeKind, NodeId>,
    outputs: Vec<NodeId>,
}

impl Network {
    /// Creates an empty network with `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        Network { num_inputs, nodes: Vec::new(), hash: HashMap::new(), outputs: Vec::new() }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Registers `node` as a primary output.
    pub fn add_output(&mut self, node: NodeId) {
        self.outputs.push(node);
    }

    /// Kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()]
    }

    /// Total number of nodes (including inputs and constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Identifiers of all nodes in creation order (inputs, constants and
    /// gates interleaved; operands always precede their users). This is the
    /// traversal order used by passes that rebuild or export a network node
    /// by node, like [`Network::to_dot`] and the service cache's NPN
    /// rewiring.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Number of logic nodes (everything except inputs and constants) — a
    /// technology-independent size measure.
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|k| !matches!(k, NodeKind::Input(_) | NodeKind::Const(_))).count()
    }

    fn intern(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&id) = self.hash.get(&kind) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.hash.insert(kind, id);
        id
    }

    /// The node for primary input `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_inputs()`.
    pub fn input(&mut self, var: usize) -> NodeId {
        assert!(var < self.num_inputs, "input index {var} out of range");
        self.intern(NodeKind::Input(var))
    }

    /// The constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.intern(NodeKind::Const(value))
    }

    /// An inverter (double negations are folded).
    pub fn not(&mut self, a: NodeId) -> NodeId {
        match self.kind(a) {
            NodeKind::Const(v) => self.constant(!v),
            NodeKind::Not(inner) => inner,
            _ => self.intern(NodeKind::Not(a)),
        }
    }

    /// A 2-input AND (with constant folding and operand normalization).
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.kind(a), self.kind(b)) {
            (NodeKind::Const(false), _) | (_, NodeKind::Const(false)) => self.constant(false),
            (NodeKind::Const(true), _) => b,
            (_, NodeKind::Const(true)) => a,
            _ if a == b => a,
            _ => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                self.intern(NodeKind::And(lo, hi))
            }
        }
    }

    /// A 2-input OR.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.kind(a), self.kind(b)) {
            (NodeKind::Const(true), _) | (_, NodeKind::Const(true)) => self.constant(true),
            (NodeKind::Const(false), _) => b,
            (_, NodeKind::Const(false)) => a,
            _ if a == b => a,
            _ => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                self.intern(NodeKind::Or(lo, hi))
            }
        }
    }

    /// A 2-input XOR.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.kind(a), self.kind(b)) {
            (NodeKind::Const(false), _) => b,
            (_, NodeKind::Const(false)) => a,
            (NodeKind::Const(true), _) => self.not(b),
            (_, NodeKind::Const(true)) => self.not(a),
            _ if a == b => self.constant(false),
            _ => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                self.intern(NodeKind::Xor(lo, hi))
            }
        }
    }

    /// Balanced AND of a list of nodes (empty list = constant 1).
    pub fn and_many(&mut self, nodes: &[NodeId]) -> NodeId {
        self.reduce_balanced(nodes, true)
    }

    /// Balanced OR of a list of nodes (empty list = constant 0).
    pub fn or_many(&mut self, nodes: &[NodeId]) -> NodeId {
        self.reduce_balanced(nodes, false)
    }

    fn reduce_balanced(&mut self, nodes: &[NodeId], is_and: bool) -> NodeId {
        match nodes.len() {
            0 => self.constant(is_and),
            1 => nodes[0],
            _ => {
                let mid = nodes.len() / 2;
                let left = self.reduce_balanced(&nodes[..mid], is_and);
                let right = self.reduce_balanced(&nodes[mid..], is_and);
                if is_and {
                    self.and(left, right)
                } else {
                    self.or(left, right)
                }
            }
        }
    }

    /// Builds the network of an SOP cover and returns the root node without
    /// registering it as an output — the building block multi-level flows
    /// (like the recursive bi-decomposition synthesizer) compose internally.
    pub fn build_cover(&mut self, cover: &Cover) -> NodeId {
        assert_eq!(cover.num_vars(), self.num_inputs, "cover arity mismatch");
        let mut products = Vec::with_capacity(cover.num_cubes());
        for cube in cover.iter() {
            let mut lits = Vec::new();
            for var in 0..cover.num_vars() {
                match cube.value(var) {
                    CubeValue::DontCare => {}
                    CubeValue::One => lits.push(self.input(var)),
                    CubeValue::Zero => {
                        let x = self.input(var);
                        lits.push(self.not(x));
                    }
                }
            }
            products.push(self.and_many(&lits));
        }
        self.or_many(&products)
    }

    /// Builds (and registers as an output) the network of an SOP cover,
    /// returning the root node.
    pub fn add_cover(&mut self, cover: &Cover) -> NodeId {
        let root = self.build_cover(cover);
        self.add_output(root);
        root
    }

    /// Builds the network of a 2-SPP form and returns the root node without
    /// registering it as an output (see [`Network::build_cover`]).
    pub fn build_spp(&mut self, form: &SppForm) -> NodeId {
        assert_eq!(form.num_vars(), self.num_inputs, "form arity mismatch");
        let mut products = Vec::with_capacity(form.num_pseudoproducts());
        for pp in form.iter() {
            let mut factors = Vec::new();
            for factor in pp.factors() {
                let node = match *factor {
                    XorFactor::Literal { var, positive } => {
                        let x = self.input(var);
                        if positive {
                            x
                        } else {
                            self.not(x)
                        }
                    }
                    XorFactor::Xor { a, b, complemented } => {
                        let xa = self.input(a);
                        let xb = self.input(b);
                        let x = self.xor(xa, xb);
                        if complemented {
                            self.not(x)
                        } else {
                            x
                        }
                    }
                };
                factors.push(node);
            }
            products.push(self.and_many(&factors));
        }
        self.or_many(&products)
    }

    /// Builds (and registers as an output) the network of a 2-SPP form,
    /// returning the root node.
    pub fn add_spp(&mut self, form: &SppForm) -> NodeId {
        let root = self.build_spp(form);
        self.add_output(root);
        root
    }

    /// Combines two sub-networks with the structural top gate of a
    /// bi-decomposition `a op b` (constant folding and structural hashing
    /// apply as usual).
    pub fn combine(&mut self, a: NodeId, b: NodeId, op: CombineOp) -> NodeId {
        match op {
            CombineOp::And => self.and(a, b),
            CombineOp::AndNotRight => {
                let nb = self.not(b);
                self.and(a, nb)
            }
            CombineOp::AndNotLeft => {
                let na = self.not(a);
                self.and(na, b)
            }
            CombineOp::Nor => {
                let o = self.or(a, b);
                self.not(o)
            }
            CombineOp::Or => self.or(a, b),
            CombineOp::OrNotLeft => {
                let na = self.not(a);
                self.or(na, b)
            }
            CombineOp::OrNotRight => {
                let nb = self.not(b);
                self.or(a, nb)
            }
            CombineOp::Nand => {
                let x = self.and(a, b);
                self.not(x)
            }
            CombineOp::Xor => self.xor(a, b),
            CombineOp::Xnor => {
                let x = self.xor(a, b);
                self.not(x)
            }
        }
    }

    /// Evaluates every declared output on a minterm.
    pub fn eval(&self, minterm: u64) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        for (i, kind) in self.nodes.iter().enumerate() {
            values[i] = match *kind {
                NodeKind::Input(var) => minterm >> var & 1 == 1,
                NodeKind::Const(v) => v,
                NodeKind::Not(a) => !values[a.index()],
                NodeKind::And(a, b) => values[a.index()] && values[b.index()],
                NodeKind::Or(a, b) => values[a.index()] || values[b.index()],
                NodeKind::Xor(a, b) => values[a.index()] ^ values[b.index()],
            };
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Per-node flag: is the node reachable from a declared output? The
    /// shared traversal under [`Network::pruned`] and [`Network::to_dot`].
    fn reachable_from_outputs(&self) -> Vec<bool> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.clone();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            match self.kind(id) {
                NodeKind::Not(a) => stack.push(a),
                NodeKind::And(a, b) | NodeKind::Or(a, b) | NodeKind::Xor(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                NodeKind::Input(_) | NodeKind::Const(_) => {}
            }
        }
        reachable
    }

    /// A copy with every node unreachable from the declared outputs
    /// removed (creation order of the survivors is preserved, so operands
    /// still precede their users). Rewiring passes — like the service
    /// cache's NPN transform, whose double negations fold away — leave dead
    /// candidates behind; pruning keeps [`Network::gate_count`] an honest
    /// size measure afterwards.
    pub fn pruned(&self) -> Network {
        let reachable = self.reachable_from_outputs();
        let mut out = Network::new(self.num_inputs);
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for id in self.node_ids().filter(|id| reachable[id.index()]) {
            let remap = |m: &[Option<NodeId>], a: NodeId| m[a.index()].expect("operand precedes");
            let new = match self.kind(id) {
                NodeKind::Input(var) => out.input(var),
                NodeKind::Const(v) => out.constant(v),
                NodeKind::Not(a) => out.not(remap(&map, a)),
                NodeKind::And(a, b) => out.and(remap(&map, a), remap(&map, b)),
                NodeKind::Or(a, b) => out.or(remap(&map, a), remap(&map, b)),
                NodeKind::Xor(a, b) => out.xor(remap(&map, a), remap(&map, b)),
            };
            map[id.index()] = Some(new);
        }
        for root in &self.outputs {
            out.add_output(map[root.index()].expect("outputs are reachable"));
        }
        out
    }

    /// Renders the sub-network reachable from the declared outputs as a
    /// Graphviz DOT digraph, mirroring `bdd::BddManager::to_dot`: inputs and
    /// constants are boxes, gates are circles labeled with their operator,
    /// and each output `k` gets a plaintext `y<k>` marker pointing at its
    /// root. Unreachable nodes (dead candidates left behind by structural
    /// hashing) are omitted.
    ///
    /// ```rust
    /// use techmap::Network;
    ///
    /// let mut net = Network::new(2);
    /// let x0 = net.input(0);
    /// let x1 = net.input(1);
    /// let f = net.and(x0, x1);
    /// net.add_output(f);
    /// let dot = net.to_dot("f");
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("AND"));
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;

        let reachable = self.reachable_from_outputs();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        for id in self.node_ids().filter(|id| reachable[id.index()]) {
            let i = id.index();
            match self.kind(id) {
                NodeKind::Input(var) => {
                    let _ = writeln!(out, "  node{i} [label=\"x{var}\", shape=box];");
                }
                NodeKind::Const(v) => {
                    let _ = writeln!(out, "  node{i} [label=\"{}\", shape=box];", u8::from(v));
                }
                NodeKind::Not(a) => {
                    let _ = writeln!(out, "  node{i} [label=\"NOT\", shape=circle];");
                    let _ = writeln!(out, "  node{} -> node{i};", a.index());
                }
                NodeKind::And(a, b) | NodeKind::Or(a, b) | NodeKind::Xor(a, b) => {
                    let label = match self.kind(id) {
                        NodeKind::And(..) => "AND",
                        NodeKind::Or(..) => "OR",
                        _ => "XOR",
                    };
                    let _ = writeln!(out, "  node{i} [label=\"{label}\", shape=circle];");
                    let _ = writeln!(out, "  node{} -> node{i};", a.index());
                    let _ = writeln!(out, "  node{} -> node{i};", b.index());
                }
            }
        }
        for (k, root) in self.outputs.iter().enumerate() {
            let _ = writeln!(out, "  out{k} [shape=plaintext, label=\"y{k}\"];");
            let _ = writeln!(out, "  node{} -> out{k};", root.index());
        }
        out.push_str("}\n");
        out
    }

    /// Fanout count of every node (used by the mapper to find tree roots).
    pub fn fanouts(&self) -> Vec<usize> {
        let mut fanout = vec![0usize; self.nodes.len()];
        for kind in &self.nodes {
            match *kind {
                NodeKind::Not(a) => fanout[a.index()] += 1,
                NodeKind::And(a, b) | NodeKind::Or(a, b) | NodeKind::Xor(a, b) => {
                    fanout[a.index()] += 1;
                    fanout[b.index()] += 1;
                }
                NodeKind::Input(_) | NodeKind::Const(_) => {}
            }
        }
        for out in &self.outputs {
            fanout[out.index()] += 1;
        }
        fanout
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network with {} inputs, {} gates, {} outputs",
            self.num_inputs,
            self.gate_count(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::Isf;
    use spp::SppSynthesizer;

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let a = net.and(x0, x1);
        let b = net.and(x1, x0);
        assert_eq!(a, b, "commutative operands must hash to the same node");
        assert_eq!(net.gate_count(), 1);
    }

    #[test]
    fn constant_folding() {
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let one = net.constant(true);
        let zero = net.constant(false);
        assert_eq!(net.and(x0, one), x0);
        assert_eq!(net.and(x0, zero), zero);
        assert_eq!(net.or(x0, zero), x0);
        let nx0 = net.not(x0);
        assert_eq!(net.not(nx0), x0);
        assert_eq!(net.xor(x0, x0), zero);
        assert_eq!(net.xor(x0, zero), x0);
    }

    #[test]
    fn cover_network_evaluates_like_the_cover() {
        let cover = Cover::from_strs(4, &["11-1", "-011"]).unwrap();
        let mut net = Network::new(4);
        net.add_cover(&cover);
        for m in 0..16u64 {
            assert_eq!(net.eval(m)[0], cover.eval(m));
        }
    }

    #[test]
    fn spp_network_evaluates_like_the_form() {
        let f = Isf::from_cover_str(4, &["1-10", "1-01", "-111", "-100"], &[]).unwrap();
        let form = SppSynthesizer::new().synthesize(&f);
        let mut net = Network::new(4);
        net.add_spp(&form);
        let tt = form.to_truth_table();
        for m in 0..16u64 {
            assert_eq!(net.eval(m)[0], tt.get(m));
        }
    }

    #[test]
    fn multi_output_network() {
        let mut net = Network::new(2);
        let a = net.add_cover(&Cover::from_strs(2, &["11"]).unwrap());
        let b = net.add_cover(&Cover::from_strs(2, &["1-", "-1"]).unwrap());
        assert_ne!(a, b);
        assert_eq!(net.outputs().len(), 2);
        assert_eq!(net.eval(0b01), vec![false, true]);
    }

    #[test]
    fn fanout_counts() {
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let a = net.and(x0, x1);
        let o = net.or(a, x0);
        net.add_output(o);
        let fanouts = net.fanouts();
        assert_eq!(fanouts[x0.index()], 2);
        assert_eq!(fanouts[a.index()], 1);
        assert_eq!(fanouts[o.index()], 1);
    }

    #[test]
    fn dot_export_mentions_reachable_nodes_and_outputs_only() {
        let mut net = Network::new(3);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let a = net.and(x0, x1);
        let na = net.not(a);
        let x2 = net.input(2); // dead: never reaches an output
        let o = net.or(na, x0);
        net.add_output(o);
        let dot = net.to_dot("g");
        assert!(dot.starts_with("digraph \"g\""));
        assert!(dot.contains("x0") && dot.contains("x1"));
        assert!(dot.contains("AND") && dot.contains("NOT") && dot.contains("OR"));
        assert!(dot.contains("out0") && dot.contains("y0"));
        assert!(!dot.contains(&format!("node{} ", x2.index())), "dead input must be omitted");
        assert!(dot.trim_end().ends_with('}'));
        // Every node referenced by an edge is also declared.
        for line in dot.lines().filter(|l| l.contains("->")) {
            let src = line.split_whitespace().next().unwrap();
            assert!(dot.contains(&format!("{src} [")), "undeclared edge source {src}");
        }
    }

    #[test]
    fn pruning_drops_dead_nodes_and_preserves_semantics() {
        let mut net = Network::new(3);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let x2 = net.input(2);
        let a = net.and(x0, x1);
        let _dead = net.xor(a, x2); // never reaches an output
        let _dead2 = net.not(x2);
        let o = net.or(a, x0);
        net.add_output(o);
        assert_eq!(net.gate_count(), 4);
        let pruned = net.pruned();
        assert_eq!(pruned.gate_count(), 2);
        assert_eq!(pruned.outputs().len(), 1);
        for m in 0..8u64 {
            assert_eq!(pruned.eval(m), net.eval(m), "minterm {m}");
        }
    }

    #[test]
    fn node_ids_enumerate_in_creation_order() {
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let a = net.and(x0, x1);
        let ids: Vec<NodeId> = net.node_ids().collect();
        assert_eq!(ids, vec![x0, x1, a]);
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let mut net = Network::new(3);
        net.add_cover(&Cover::empty(3));
        assert_eq!(net.eval(0b000), vec![false]);
        assert_eq!(net.eval(0b111), vec![false]);
    }
}
