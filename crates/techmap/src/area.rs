use boolfunc::Cover;
use spp::SppForm;

use crate::library::GateLibrary;
use crate::mapper::{Mapper, MappingResult};
use crate::network::Network;

/// The binary operator combining the divisor and quotient networks when the
/// bi-decomposed form `g op h` is mapped.
///
/// Only the operator's *gate structure* matters here (which top gate is
/// instantiated); the semantic side of the ten operators lives in the
/// `bidecomp` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineOp {
    /// `g · h`.
    And,
    /// `g · h'` (the `⇏` operator).
    AndNotRight,
    /// `g' · h` (the `⇍` operator).
    AndNotLeft,
    /// `(g + h)'`.
    Nor,
    /// `g + h`.
    Or,
    /// `g' + h` (the `⇒` operator).
    OrNotLeft,
    /// `g + h'` (the `⇐` operator).
    OrNotRight,
    /// `(g · h)'`.
    Nand,
    /// `g ⊕ h`.
    Xor,
    /// `(g ⊕ h)'`.
    Xnor,
}

/// Convenience façade bundling a [`GateLibrary`] and a [`Mapper`] and exposing
/// the three area queries the experiments need: area of an SOP cover, of a
/// 2-SPP form, and of a bi-decomposed form `g op h`.
///
/// ```rust
/// use boolfunc::Cover;
/// use techmap::AreaModel;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let model = AreaModel::mcnc();
/// let area = model.cover_area(&Cover::from_strs(3, &["11-", "0-1"])?);
/// assert!(area > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AreaModel {
    mapper: Mapper,
}

impl AreaModel {
    /// Creates an area model over the embedded mcnc-like library.
    pub fn mcnc() -> Self {
        AreaModel { mapper: Mapper::new(GateLibrary::mcnc()) }
    }

    /// Creates an area model over a custom library.
    pub fn new(library: GateLibrary) -> Self {
        AreaModel { mapper: Mapper::new(library) }
    }

    /// The underlying mapper.
    pub fn mapper(&self) -> &Mapper {
        &self.mapper
    }

    /// Mapped area of an SOP cover.
    pub fn cover_area(&self, cover: &Cover) -> f64 {
        self.cover_mapping(cover).area
    }

    /// Full mapping result of an SOP cover.
    pub fn cover_mapping(&self, cover: &Cover) -> MappingResult {
        let mut net = Network::new(cover.num_vars());
        net.add_cover(cover);
        self.mapper.map(&net)
    }

    /// Mapped area of a 2-SPP form.
    pub fn spp_area(&self, form: &SppForm) -> f64 {
        self.spp_mapping(form).area
    }

    /// Full mapping result of a 2-SPP form.
    pub fn spp_mapping(&self, form: &SppForm) -> MappingResult {
        let mut net = Network::new(form.num_vars());
        net.add_spp(form);
        self.mapper.map(&net)
    }

    /// Mapped area of the bi-decomposed form `g op h` where both components
    /// are given as 2-SPP forms.
    ///
    /// # Panics
    ///
    /// Panics if the two forms have a different number of variables.
    pub fn bidecomposition_area(&self, g: &SppForm, h: &SppForm, op: CombineOp) -> f64 {
        self.bidecomposition_mapping(g, h, op).area
    }

    /// Full mapping result of the bi-decomposed form `g op h`.
    ///
    /// # Panics
    ///
    /// Panics if the two forms have a different number of variables.
    pub fn bidecomposition_mapping(
        &self,
        g: &SppForm,
        h: &SppForm,
        op: CombineOp,
    ) -> MappingResult {
        assert_eq!(g.num_vars(), h.num_vars(), "divisor/quotient arity mismatch");
        let mut net = Network::new(g.num_vars());
        let g_root = net.build_spp(g);
        let h_root = net.build_spp(h);
        let combined = net.combine(g_root, h_root, op);
        net.add_output(combined);
        self.mapper.map(&net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::Isf;
    use spp::SppSynthesizer;

    #[test]
    fn cover_and_spp_areas_track_literal_counts() {
        let model = AreaModel::mcnc();
        let f = Isf::from_cover_str(4, &["1-10", "1-01", "-111", "-100"], &[]).unwrap();
        let sop = sop::espresso(&f);
        let form = SppSynthesizer::new().synthesize(&f);
        // The 2-SPP form has half the literals of the SOP; its mapped area must
        // also be smaller.
        assert!(form.literal_count() < sop.literal_count());
        assert!(model.spp_area(&form) < model.cover_area(&sop));
    }

    #[test]
    fn bidecomposition_area_includes_the_top_gate() {
        let model = AreaModel::mcnc();
        let f = Isf::from_cover_str(2, &["11"], &[]).unwrap();
        let g_form = SppSynthesizer::new().synthesize(&f);
        let one = SppForm::one(2);
        let plain = model.spp_area(&g_form);
        let with_and = model.bidecomposition_area(&g_form, &one, CombineOp::And);
        // g AND 1 folds away the top gate entirely.
        assert!((with_and - plain).abs() < 1e-9);
        let with_or = model.bidecomposition_area(&g_form, &g_form, CombineOp::Xor);
        // g XOR g collapses to the constant 0 thanks to structural hashing.
        assert!(with_or < plain + 1e-9);
    }

    #[test]
    fn all_combine_ops_produce_finite_area() {
        let model = AreaModel::mcnc();
        let f = Isf::from_cover_str(3, &["11-"], &[]).unwrap();
        let g = Isf::from_cover_str(3, &["1--"], &[]).unwrap();
        let f_form = SppSynthesizer::new().synthesize(&f);
        let g_form = SppSynthesizer::new().synthesize(&g);
        for op in [
            CombineOp::And,
            CombineOp::AndNotRight,
            CombineOp::AndNotLeft,
            CombineOp::Nor,
            CombineOp::Or,
            CombineOp::OrNotLeft,
            CombineOp::OrNotRight,
            CombineOp::Nand,
            CombineOp::Xor,
            CombineOp::Xnor,
        ] {
            let area = model.bidecomposition_area(&g_form, &f_form, op);
            assert!(area.is_finite() && area >= 0.0, "bad area for {op:?}");
        }
    }
}
