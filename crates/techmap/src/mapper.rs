use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;
use crate::library::GateLibrary;
use crate::network::{Network, NodeId, NodeKind};

/// Result of mapping a [`Network`] onto a [`GateLibrary`]: total area plus a
/// per-gate instance count (the "mapped netlist" summary SIS prints).
#[derive(Debug, Clone, PartialEq)]
pub struct MappingResult {
    /// Total mapped area in library units.
    pub area: f64,
    /// Number of instances of each library gate, keyed by gate name.
    pub gate_counts: BTreeMap<String, usize>,
}

impl MappingResult {
    /// Total number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gate_counts.values().sum()
    }
}

impl fmt::Display for MappingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area {:.1} ({} gates)", self.area, self.num_gates())?;
        for (name, count) in &self.gate_counts {
            write!(f, ", {name}×{count}")?;
        }
        Ok(())
    }
}

/// A local-covering technology mapper.
///
/// Every logic node of the network is covered by one library gate; an
/// inverter whose (single-fanout) input is an AND, OR or XOR node is merged
/// with it into the corresponding NAND2/NOR2/XNOR2 gate, which is the match
/// that matters for area on the SOP/2-SPP netlists produced in this
/// workspace. The mapper is deterministic, so relative areas between two
/// forms of the same function are meaningful — which is all the gain columns
/// of Tables III and IV require.
///
/// ```rust
/// use boolfunc::Cover;
/// use techmap::{GateLibrary, Mapper, Network};
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let mut net = Network::new(2);
/// net.add_cover(&Cover::from_strs(2, &["11"])?);
/// let result = Mapper::new(GateLibrary::mcnc()).map(&net);
/// assert_eq!(result.num_gates(), 1); // a single AND2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    library: GateLibrary,
}

impl Mapper {
    /// Creates a mapper over the given library.
    pub fn new(library: GateLibrary) -> Self {
        Mapper { library }
    }

    /// The library used by this mapper.
    pub fn library(&self) -> &GateLibrary {
        &self.library
    }

    /// Maps a network, returning the total area and the gate census.
    ///
    /// # Panics
    ///
    /// Panics if the library is missing one of the required gate kinds
    /// (`inv`, `nand2`, `nor2`, `and2`, `or2`, `xor2`, `xnor2`).
    pub fn map(&self, network: &Network) -> MappingResult {
        let fanouts = network.fanouts();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut area = 0.0;
        // Nodes absorbed into a NAND/NOR/XNOR peephole match.
        let mut absorbed = vec![false; network.num_nodes()];

        let add_gate = |kind: GateKind, counts: &mut BTreeMap<String, usize>, area: &mut f64| {
            let gate = self
                .library
                .best(kind)
                .unwrap_or_else(|| panic!("library has no gate of kind {kind:?}"));
            *counts.entry(gate.name().to_string()).or_insert(0) += 1;
            *area += gate.area();
        };

        // Walk nodes in reverse creation order so that inverters are seen
        // before the node they might absorb.
        for index in (0..network.num_nodes()).rev() {
            let id = NodeId::from_raw(index as u32);
            if absorbed[index] {
                continue;
            }
            match network.kind(id) {
                NodeKind::Input(_) | NodeKind::Const(_) => {}
                NodeKind::Not(inner) => {
                    let inner_kind = network.kind(inner);
                    let can_absorb = fanouts[inner.index()] == 1;
                    match (inner_kind, can_absorb) {
                        (NodeKind::And(_, _), true) => {
                            absorbed[inner.index()] = true;
                            add_gate(GateKind::Nand2, &mut counts, &mut area);
                        }
                        (NodeKind::Or(_, _), true) => {
                            absorbed[inner.index()] = true;
                            add_gate(GateKind::Nor2, &mut counts, &mut area);
                        }
                        (NodeKind::Xor(_, _), true) => {
                            absorbed[inner.index()] = true;
                            add_gate(GateKind::Xnor2, &mut counts, &mut area);
                        }
                        _ => add_gate(GateKind::Inv, &mut counts, &mut area),
                    }
                }
                NodeKind::And(_, _) => add_gate(GateKind::And2, &mut counts, &mut area),
                NodeKind::Or(_, _) => add_gate(GateKind::Or2, &mut counts, &mut area),
                NodeKind::Xor(_, _) => add_gate(GateKind::Xor2, &mut counts, &mut area),
            }
        }
        MappingResult { area, gate_counts: counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::Cover;

    fn map_cover(cubes: &[&str], n: usize) -> MappingResult {
        let cover = Cover::from_strs(n, cubes).unwrap();
        let mut net = Network::new(n);
        net.add_cover(&cover);
        Mapper::new(GateLibrary::mcnc()).map(&net)
    }

    #[test]
    fn single_cube_maps_to_and_gates() {
        let r = map_cover(&["11"], 2);
        assert_eq!(r.num_gates(), 1);
        assert_eq!(r.gate_counts.get("and2"), Some(&1));
    }

    #[test]
    fn negative_literals_need_inverters() {
        let r = map_cover(&["10"], 2);
        assert_eq!(r.gate_counts.get("and2"), Some(&1));
        assert_eq!(r.gate_counts.get("inv"), Some(&1));
    }

    #[test]
    fn nand_peephole_is_used() {
        // not(and(x0, x1)) with the inverter as the only fanout.
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let a = net.and(x0, x1);
        let na = net.not(a);
        net.add_output(na);
        let r = Mapper::new(GateLibrary::mcnc()).map(&net);
        assert_eq!(r.num_gates(), 1);
        assert_eq!(r.gate_counts.get("nand2"), Some(&1));
    }

    #[test]
    fn shared_node_is_not_absorbed() {
        // The AND feeds both an inverter and an output, so it cannot be merged
        // into a NAND: we need an AND2 plus an INV.
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let a = net.and(x0, x1);
        let na = net.not(a);
        net.add_output(a);
        net.add_output(na);
        let r = Mapper::new(GateLibrary::mcnc()).map(&net);
        assert_eq!(r.gate_counts.get("and2"), Some(&1));
        assert_eq!(r.gate_counts.get("inv"), Some(&1));
        assert_eq!(r.gate_counts.get("nand2"), None);
    }

    #[test]
    fn xnor_peephole() {
        let mut net = Network::new(2);
        let x0 = net.input(0);
        let x1 = net.input(1);
        let x = net.xor(x0, x1);
        let nx = net.not(x);
        net.add_output(nx);
        let r = Mapper::new(GateLibrary::mcnc()).map(&net);
        assert_eq!(r.num_gates(), 1);
        assert_eq!(r.gate_counts.get("xnor2"), Some(&1));
    }

    #[test]
    fn area_is_monotone_in_cover_size() {
        let small = map_cover(&["11--"], 4);
        let large = map_cover(&["11--", "--11", "1--1", "0110"], 4);
        assert!(small.area < large.area);
    }

    #[test]
    fn mapped_area_matches_gate_census() {
        let r = map_cover(&["110", "011", "101"], 3);
        let lib = GateLibrary::mcnc();
        let recomputed: f64 = r
            .gate_counts
            .iter()
            .map(|(name, count)| {
                let gate = lib.gates().iter().find(|g| g.name() == name.as_str()).unwrap();
                gate.area() * *count as f64
            })
            .sum();
        assert!((recomputed - r.area).abs() < 1e-9);
    }
}
