//! The espresso REDUCE step: each cube is shrunk to the smallest cube that
//! still covers the minterms no other cube (nor the dc-set) takes care of.
//! Reduction never changes the function; it un-does primality so that the
//! following EXPAND can escape a local minimum by growing in a different
//! direction.

use boolfunc::{Cover, Cube};

use crate::complement::complement;
use crate::tautology::is_tautology;

/// Reduces every cube of the cover in place (functionally the cover still
/// covers `on \ dc`, assuming it did before).
///
/// ```rust
/// use boolfunc::Cover;
/// use sop::reduce;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let f = Cover::from_strs(3, &["1--", "-1-"])?;
/// let reduced = reduce(&f, &Cover::empty(3));
/// // The overlap x0 x1 is assigned to one of the two cubes only.
/// assert_eq!(reduced.minterm_count(), f.minterm_count());
/// # Ok(())
/// # }
/// ```
pub fn reduce(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Reduce the largest cubes first: they have the most freedom to shrink.
    cubes.sort_by_key(|c| c.literal_count());

    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    for i in 0..cubes.len() {
        let cube = cubes[i];
        // Everything else: the cubes already reduced plus the not-yet-processed
        // ones plus the dc-set.
        let mut rest =
            Cover::from_cubes(n, result.iter().copied().chain(cubes.iter().skip(i + 1).copied()));
        rest = rest.union(dc);
        let q = rest.cofactor_cube(&cube);
        if is_tautology(&q) {
            // The cube is entirely covered by the others: it reduces to nothing.
            continue;
        }
        // Part of `cube` only this cube covers: cube ∧ ¬q. The smallest cube
        // containing it is cube ∩ supercube(¬q).
        let not_q = complement(&q);
        let mut super_cube: Option<Cube> = None;
        for c in not_q.iter() {
            super_cube = Some(match super_cube {
                None => *c,
                Some(s) => s.supercube(c),
            });
        }
        let reduced = match super_cube {
            None => cube,
            Some(s) => cube.intersect(&s).unwrap_or(cube),
        };
        result.push(reduced);
    }
    Cover::from_cubes(n, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn function_preserved(before: &Cover, after: &Cover, dc: &Cover) {
        let before_tt = before.to_truth_table();
        let after_tt = after.to_truth_table();
        let dc_tt = dc.to_truth_table();
        // The reduced cover may only lose minterms that are don't-cares or
        // covered by other cubes — as a whole it must still cover on \ dc.
        assert!(before_tt.difference(&dc_tt).is_subset_of(&after_tt));
        assert!(after_tt.is_subset_of(&before_tt));
    }

    #[test]
    fn overlapping_cubes_shrink() {
        let f = Cover::from_strs(3, &["1--", "-1-"]).unwrap();
        let r = reduce(&f, &Cover::empty(3));
        function_preserved(&f, &r, &Cover::empty(3));
        // At least one of the cubes must have gained a literal.
        assert!(r.literal_count() > f.literal_count());
    }

    #[test]
    fn disjoint_cover_is_unchanged() {
        let f = Cover::from_strs(3, &["11-", "00-"]).unwrap();
        let r = reduce(&f, &Cover::empty(3));
        assert_eq!(r.to_truth_table(), f.to_truth_table());
        assert_eq!(r.literal_count(), f.literal_count());
    }

    #[test]
    fn contained_cube_forces_the_big_one_to_shrink() {
        // "1--" overlaps "11-": reduction keeps the function but carves the
        // overlap out of the larger cube.
        let f = Cover::from_strs(3, &["1--", "11-"]).unwrap();
        let r = reduce(&f, &Cover::empty(3));
        function_preserved(&f, &r, &Cover::empty(3));
        assert_eq!(r.num_cubes(), 2);
        assert!(r.literal_count() > f.literal_count());
        assert_eq!(r.to_truth_table(), f.to_truth_table());
    }

    #[test]
    fn reduction_respects_dc() {
        let f = Cover::from_strs(2, &["1-"]).unwrap();
        let dc = Cover::from_strs(2, &["10"]).unwrap();
        let r = reduce(&f, &dc);
        // The only required minterm is x0 x1; the cube may shrink to it.
        let required = Cover::from_strs(2, &["11"]).unwrap().to_truth_table();
        assert!(required.is_subset_of(&r.to_truth_table()));
    }

    #[test]
    fn random_covers_keep_their_function() {
        let mut lcg = 0xC0FFEEu64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for _ in 0..50 {
            let num_cubes = (next() % 5 + 2) as usize;
            let mut cubes = Vec::new();
            for _ in 0..num_cubes {
                let s: String = (0..4)
                    .map(|_| match next() % 3 {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect();
                cubes.push(s);
            }
            let refs: Vec<&str> = cubes.iter().map(String::as_str).collect();
            let f = Cover::from_strs(4, &refs).unwrap();
            let r = reduce(&f, &Cover::empty(4));
            function_preserved(&f, &r, &Cover::empty(4));
        }
    }
}
