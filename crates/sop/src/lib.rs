//! # sop
//!
//! An espresso-style heuristic two-level minimizer, playing the role of
//! espresso inside the SIS flow used by the paper's evaluation: whenever a
//! function (the dividend `f`, the divisor `g`, or the quotient `h`) has to
//! be realised as a sum of products, this crate produces the cover.
//!
//! The implementation follows the classical structure:
//!
//! * [`tautology`] — unate-recursive tautology check (the workhorse predicate);
//! * [`complement`] — cover complementation by Shannon expansion with unate
//!   shortcuts;
//! * [`expand`] — cube expansion against the off-set;
//! * [`irredundant`] — removal of cubes covered by the rest of the cover;
//! * [`reduce`] — cube reduction to escape local minima;
//! * [`espresso`] — the EXPAND → IRREDUNDANT → REDUCE iteration;
//! * [`exact`] — Quine–McCluskey prime generation plus unate covering, used as
//!   a reference minimizer for small functions in tests and examples.
//!
//! ```rust
//! use boolfunc::{Cover, Isf};
//! use sop::espresso;
//!
//! # fn main() -> Result<(), boolfunc::BoolFuncError> {
//! // f = x0 x1 + x0 x1' = x0, minimization should find the single-literal cover.
//! let f = Isf::from_cover_str(2, &["11", "10"], &[])?;
//! let minimized = espresso(&f);
//! assert_eq!(minimized.num_cubes(), 1);
//! assert_eq!(minimized.literal_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complement;
pub mod cost;
pub mod espresso;
pub mod exact;
pub mod expand;
pub mod irredundant;
pub mod reduce;
pub mod tautology;

pub use complement::complement;
pub use cost::Cost;
pub use espresso::{espresso, espresso_cover, EspressoOptions};
pub use exact::exact_minimize;
pub use expand::expand;
pub use irredundant::irredundant;
pub use reduce::reduce;
pub use tautology::is_tautology;
