//! # sop
//!
//! An espresso-style heuristic two-level minimizer, playing the role of
//! espresso inside the SIS flow used by the paper's evaluation: whenever a
//! function (the dividend `f`, the divisor `g`, or the quotient `h`) has to
//! be realised as a sum of products, this crate produces the cover.
//!
//! The implementation follows the classical structure:
//!
//! * [`mod@tautology`] — unate-recursive tautology check (the workhorse predicate);
//! * [`mod@complement`] — cover complementation by Shannon expansion with unate
//!   shortcuts;
//! * [`mod@expand`] — cube expansion against the off-set;
//! * [`mod@irredundant`] — removal of cubes covered by the rest of the cover;
//! * [`mod@reduce`] — cube reduction to escape local minima;
//! * [`mod@espresso`] — the EXPAND → IRREDUNDANT → REDUCE iteration;
//! * [`mod@exact`] — Quine–McCluskey prime generation plus unate covering, used as
//!   a reference minimizer for small functions in tests and examples.
//!
//! ```rust
//! use boolfunc::{Cover, Isf};
//! use sop::espresso;
//!
//! # fn main() -> Result<(), boolfunc::BoolFuncError> {
//! // f = x0 x1 + x0 x1' = x0, minimization should find the single-literal cover.
//! let f = Isf::from_cover_str(2, &["11", "10"], &[])?;
//! let minimized = espresso(&f);
//! assert_eq!(minimized.num_cubes(), 1);
//! assert_eq!(minimized.literal_count(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! ## Algorithm notes
//!
//! Everything is built on the *unate recursive paradigm* of the original
//! espresso: pick the most binate variable, Shannon-cofactor the cover, solve
//! the two subproblems, and merge. Unate covers — which the recursion reaches
//! quickly in practice — admit constant-time answers for tautology and cheap
//! complements, which is what makes the heuristic loop affordable. Cube
//! containment, cofactors and consensus are bit-mask operations on
//! [`boolfunc::Cube`], so a cover of `k` cubes over `n ≤ 64` variables costs
//! `O(k)` words per operation, independent of `n`.
//!
//! Don't-cares are first-class: every entry point takes the dc-set alongside
//! the on-set (as an [`boolfunc::Isf`] or an explicit dc [`boolfunc::Cover`]),
//! EXPAND blocks only against the true off-set, and the result satisfies
//! `on ⊆ F ⊆ on ∪ dc`. This matters for the paper's flow, where the quotient
//! `h` derives almost all of its area savings from its huge dc-set.
//!
//! ## Choosing an entry point
//!
//! * [`fn@espresso`] — the default: heuristic, fast, near-minimal. Used by the
//!   pipeline whenever a cover is needed.
//! * [`fn@espresso_cover`] — the same loop with explicit on/dc covers and
//!   [`EspressoOptions`] (iteration budget, REDUCE on/off).
//! * [`fn@exact_minimize`] — Quine–McCluskey primes plus branch-and-bound unate
//!   covering; exponential, but exact. The reference oracle in tests.
//!
//! ```rust
//! use boolfunc::Isf;
//! use sop::{espresso, exact_minimize};
//!
//! # fn main() -> Result<(), boolfunc::BoolFuncError> {
//! // On small functions the heuristic should match the exact minimum.
//! let f = Isf::from_cover_str(3, &["11-", "1-1", "-11"], &[])?;
//! assert_eq!(espresso(&f).num_cubes(), exact_minimize(&f).num_cubes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complement;
pub mod cost;
pub mod espresso;
pub mod exact;
pub mod expand;
pub mod irredundant;
pub mod reduce;
pub mod tautology;

pub use complement::complement;
pub use cost::Cost;
pub use espresso::{espresso, espresso_cover, EspressoOptions};
pub use exact::exact_minimize;
pub use expand::expand;
pub use irredundant::irredundant;
pub use reduce::reduce;
pub use tautology::is_tautology;
