//! Exact two-level minimization for small functions: Quine–McCluskey prime
//! implicant generation followed by a covering step (essential primes, then a
//! branch-and-bound search on small instances, greedy otherwise).
//!
//! The exact minimizer is used as the reference point in tests (the heuristic
//! [`crate::espresso()`] result should never have fewer literals than the exact
//! one claims impossible) and for the tiny worked examples of the paper
//! (Figs. 1 and 2).

use std::collections::HashSet;

use boolfunc::{Cover, Cube, Isf};

/// Generates every prime implicant of the incompletely specified function
/// (the primes of `on ∪ dc`).
pub fn prime_implicants(f: &Isf) -> Vec<Cube> {
    let n = f.num_vars();
    let care_on = f.max_completion();
    let mut current: HashSet<Cube> =
        care_on.ones().map(|m| Cube::minterm(n, m).expect("arity checked by the ISF")).collect();
    let mut primes: Vec<Cube> = Vec::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flags = vec![false; cubes.len()];
        let mut next: HashSet<Cube> = HashSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = merge_adjacent(&cubes[i], &cubes[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, cube) in cubes.iter().enumerate() {
            if !merged_flags[i] {
                primes.push(*cube);
            }
        }
        current = next;
    }
    primes.sort();
    primes.dedup();
    primes
}

/// Merges two cubes that have identical literal sets except for exactly one
/// variable on which they take opposite values.
fn merge_adjacent(a: &Cube, b: &Cube) -> Option<Cube> {
    if a.mask() != b.mask() {
        return None;
    }
    let diff = a.polarity() ^ b.polarity();
    if diff.count_ones() != 1 {
        return None;
    }
    Cube::from_masks(a.num_vars(), a.mask() & !diff, a.polarity() & !diff).ok()
}

/// Exactly minimizes a small incompletely specified function, returning a
/// minimum-cube (ties broken by literal count) prime cover of the on-set.
///
/// # Panics
///
/// Panics if the function has more than 16 variables (the exact covering step
/// is exponential; use [`crate::espresso()`] for anything larger).
///
/// ```rust
/// use boolfunc::Isf;
/// use sop::exact_minimize;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let f = Isf::from_cover_str(3, &["11-", "1-1", "-11"], &[])?;
/// let m = exact_minimize(&f);
/// assert_eq!(m.num_cubes(), 3);
/// # Ok(())
/// # }
/// ```
pub fn exact_minimize(f: &Isf) -> Cover {
    assert!(f.num_vars() <= 16, "exact minimization limited to 16 variables");
    let n = f.num_vars();
    let primes = prime_implicants(f);
    let required: Vec<u64> = f.on().ones().collect();
    if required.is_empty() {
        return Cover::empty(n);
    }

    // Covering matrix: for each required minterm, the primes covering it.
    let covers_of: Vec<Vec<usize>> = required
        .iter()
        .map(|&m| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains_minterm(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    // Essential primes: the only cover of some minterm.
    let mut chosen: HashSet<usize> = HashSet::new();
    for options in &covers_of {
        if options.len() == 1 {
            chosen.insert(options[0]);
        }
    }
    let still_uncovered: Vec<usize> = (0..required.len())
        .filter(|&mi| !covers_of[mi].iter().any(|p| chosen.contains(p)))
        .collect();

    // Remaining covering problem, solved exactly when small, greedily otherwise.
    let extra = if still_uncovered.len() <= 20 && primes.len() <= 24 {
        branch_and_bound(&covers_of, &still_uncovered)
    } else {
        greedy_cover(&covers_of, &still_uncovered, primes.len())
    };
    chosen.extend(extra);

    let mut cover = Cover::from_cubes(n, chosen.iter().map(|&i| primes[i]));
    cover.remove_contained_cubes();
    cover
}

fn greedy_cover(covers_of: &[Vec<usize>], uncovered: &[usize], num_primes: usize) -> Vec<usize> {
    let mut remaining: HashSet<usize> = uncovered.iter().copied().collect();
    let mut chosen = Vec::new();
    while !remaining.is_empty() {
        let mut best = (0usize, 0usize);
        for p in 0..num_primes {
            let count = remaining.iter().filter(|&&mi| covers_of[mi].contains(&p)).count();
            if count > best.1 {
                best = (p, count);
            }
        }
        if best.1 == 0 {
            break;
        }
        chosen.push(best.0);
        remaining.retain(|&mi| !covers_of[mi].contains(&best.0));
    }
    chosen
}

fn branch_and_bound(covers_of: &[Vec<usize>], uncovered: &[usize]) -> Vec<usize> {
    let mut best: Option<Vec<usize>> = None;
    let mut current: Vec<usize> = Vec::new();
    fn recurse(
        covers_of: &[Vec<usize>],
        remaining: &[usize],
        current: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
    ) {
        if let Some(b) = best {
            if current.len() >= b.len() {
                return;
            }
        }
        let Some(&first) = remaining.first() else {
            *best = Some(current.clone());
            return;
        };
        // Branch on the ways to cover the first uncovered minterm.
        for &p in &covers_of[first] {
            if current.contains(&p) {
                continue;
            }
            current.push(p);
            let next: Vec<usize> =
                remaining.iter().copied().filter(|&mi| !covers_of[mi].contains(&p)).collect();
            recurse(covers_of, &next, current, best);
            current.pop();
        }
    }
    recurse(covers_of, uncovered, &mut current, &mut best);
    best.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::{espresso, verify_cover};
    use boolfunc::TruthTable;

    #[test]
    fn primes_of_a_simple_function() {
        // f = x0 x1 + x0 x1' -> the only prime is x0.
        let f = Isf::from_cover_str(2, &["11", "10"], &[]).unwrap();
        let primes = prime_implicants(&f);
        assert_eq!(primes.len(), 1);
        assert_eq!(primes[0].to_string(), "1-");
    }

    #[test]
    fn primes_of_xor_are_the_minterms() {
        let f = Isf::from_cover_str(2, &["10", "01"], &[]).unwrap();
        let primes = prime_implicants(&f);
        assert_eq!(primes.len(), 2);
    }

    #[test]
    fn exact_result_is_valid_and_optimal_for_majority() {
        let f = Isf::from_cover_str(3, &["11-", "1-1", "-11"], &[]).unwrap();
        let m = exact_minimize(&f);
        assert!(verify_cover(&f, &m));
        assert_eq!(m.num_cubes(), 3);
    }

    #[test]
    fn exact_exploits_dont_cares() {
        // With the x0 x1 x2' quarter as don't-care the two on-set cubes merge
        // into the single prime x0 x1.
        let f = Isf::from_cover_str(4, &["1111", "1110"], &["110-"]).unwrap();
        let m = exact_minimize(&f);
        assert!(verify_cover(&f, &m));
        assert_eq!(m.num_cubes(), 1);
        assert!(m.literal_count() <= 2);
    }

    #[test]
    fn espresso_never_beats_exact_on_cube_count_for_small_functions() {
        let mut lcg = 0x13572468u64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for _ in 0..20 {
            let on = TruthTable::from_fn(4, |_| next() % 3 == 0);
            let f = Isf::completely_specified(on);
            let exact = exact_minimize(&f);
            let heur = espresso(&f);
            assert!(verify_cover(&f, &exact));
            assert!(verify_cover(&f, &heur));
            assert!(exact.num_cubes() <= heur.num_cubes());
        }
    }

    #[test]
    fn empty_and_constant_functions() {
        let zero = Isf::completely_specified(TruthTable::zero(3));
        assert!(exact_minimize(&zero).is_empty());
        let one = Isf::completely_specified(TruthTable::one(3));
        let m = exact_minimize(&one);
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.literal_count(), 0);
    }
}
