//! Unate-recursive tautology check.
//!
//! The tautology predicate (`does a cover evaluate to 1 everywhere?`) is the
//! primitive on which containment tests, irredundancy and reduction are all
//! built. The implementation is the classical unate-recursion paradigm:
//! cofactor on the most binate variable and recurse, with unate covers
//! resolved immediately.

use boolfunc::{Cover, Cube, CubeValue};

/// Returns `true` if the cover evaluates to 1 on every minterm.
///
/// ```rust
/// use boolfunc::Cover;
/// use sop::is_tautology;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// assert!(is_tautology(&Cover::from_strs(2, &["1-", "0-"])?));
/// assert!(!is_tautology(&Cover::from_strs(2, &["1-", "01"])?));
/// # Ok(())
/// # }
/// ```
pub fn is_tautology(cover: &Cover) -> bool {
    // Any full cube makes the cover a tautology outright.
    if cover.iter().any(Cube::is_full) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    match most_binate_variable(cover) {
        None => {
            // The cover is unate and contains no full cube: a unate cover is a
            // tautology iff it contains the full cube, so it is not one.
            false
        }
        Some(var) => {
            is_tautology(&cover.cofactor(var, false)) && is_tautology(&cover.cofactor(var, true))
        }
    }
}

/// Returns `true` if `cover ∪ dc` covers every minterm of `cube`.
///
/// This is the containment test used by EXPAND (to check that an enlarged
/// cube stays inside `on ∪ dc`) and IRREDUNDANT (to check that a cube is
/// covered by the other cubes). It reduces to a tautology check of the
/// generalized cofactor with respect to `cube`.
pub fn covers_cube(cover: &Cover, dc: &Cover, cube: &Cube) -> bool {
    let combined = cover.union(dc);
    is_tautology(&combined.cofactor_cube(cube))
}

/// Picks the *most binate* variable of the cover: the variable appearing in
/// both polarities, maximising the number of cubes in which it appears.
/// Returns `None` if the cover is unate (no variable appears in both
/// polarities).
pub(crate) fn most_binate_variable(cover: &Cover) -> Option<usize> {
    let n = cover.num_vars();
    let mut pos = vec![0usize; n];
    let mut neg = vec![0usize; n];
    for cube in cover.iter() {
        for var in 0..n {
            match cube.value(var) {
                CubeValue::One => pos[var] += 1,
                CubeValue::Zero => neg[var] += 1,
                CubeValue::DontCare => {}
            }
        }
    }
    let mut best: Option<(usize, usize)> = None;
    for var in 0..n {
        if pos[var] > 0 && neg[var] > 0 {
            let score = pos[var] + neg[var];
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((var, score));
            }
        }
    }
    best.map(|(var, _)| var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_tautology(cover: &Cover) -> bool {
        cover.is_tautology_exhaustive()
    }

    #[test]
    fn simple_cases() {
        assert!(is_tautology(&Cover::tautology(4)));
        assert!(!is_tautology(&Cover::empty(4)));
        let c = Cover::from_strs(1, &["1", "0"]).unwrap();
        assert!(is_tautology(&c));
    }

    #[test]
    fn three_variable_tautology() {
        // x0 + x0'x1 + x0'x1' is a tautology.
        let c = Cover::from_strs(3, &["1--", "01-", "00-"]).unwrap();
        assert!(is_tautology(&c));
        // Dropping the last cube breaks it.
        let c = Cover::from_strs(3, &["1--", "01-"]).unwrap();
        assert!(!is_tautology(&c));
    }

    #[test]
    fn unate_cover_without_full_cube_is_not_tautology() {
        let c = Cover::from_strs(3, &["1--", "-1-", "--1"]).unwrap();
        assert!(!is_tautology(&c));
        assert!(!exhaustive_tautology(&c));
    }

    #[test]
    fn agrees_with_exhaustive_check_on_random_covers() {
        let mut lcg = 0x2545F491u64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for _ in 0..200 {
            let num_cubes = (next() % 6 + 1) as usize;
            let mut cubes = Vec::new();
            for _ in 0..num_cubes {
                let s: String = (0..4)
                    .map(|_| match next() % 3 {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect();
                cubes.push(s);
            }
            let refs: Vec<&str> = cubes.iter().map(String::as_str).collect();
            let cover = Cover::from_strs(4, &refs).unwrap();
            assert_eq!(
                is_tautology(&cover),
                exhaustive_tautology(&cover),
                "disagreement on cover {cover}"
            );
        }
    }

    #[test]
    fn covers_cube_checks_containment_with_dc() {
        let on = Cover::from_strs(3, &["11-"]).unwrap();
        let dc = Cover::from_strs(3, &["10-"]).unwrap();
        let cube: Cube = "1--".parse().unwrap();
        // on alone does not cover x0, but on ∪ dc does.
        assert!(!covers_cube(&on, &Cover::empty(3), &cube));
        assert!(covers_cube(&on, &dc, &cube));
    }

    #[test]
    fn most_binate_variable_selection() {
        let c = Cover::from_strs(3, &["1-0", "0-1", "1-1"]).unwrap();
        // x0 appears positively twice and negatively once; x2 likewise; x1 never.
        let v = most_binate_variable(&c).unwrap();
        assert!(v == 0 || v == 2);
        let unate = Cover::from_strs(3, &["1--", "-1-"]).unwrap();
        assert_eq!(most_binate_variable(&unate), None);
    }
}
