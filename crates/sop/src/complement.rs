//! Cover complementation by Shannon expansion.
//!
//! The espresso EXPAND step needs the off-set of the function, which is the
//! complement of `on ∪ dc`. The complement is computed with the same
//! unate-recursion skeleton as the tautology check: pick the most binate
//! variable, complement the two cofactors, and reassemble with the branching
//! literal. Single-cube covers are complemented directly by De Morgan.

use boolfunc::{Cover, Cube, CubeValue};

use crate::tautology::most_binate_variable;

/// Complements a cover.
///
/// ```rust
/// use boolfunc::Cover;
/// use sop::complement;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let f = Cover::from_strs(3, &["11-"])?;
/// let not_f = complement(&f);
/// assert_eq!(not_f.minterm_count(), 6);
/// # Ok(())
/// # }
/// ```
pub fn complement(cover: &Cover) -> Cover {
    let n = cover.num_vars();
    if cover.is_empty() {
        return Cover::tautology(n);
    }
    if cover.iter().any(Cube::is_full) {
        return Cover::empty(n);
    }
    if cover.num_cubes() == 1 {
        return complement_cube(&cover.cubes()[0]);
    }
    // Shannon expansion on the most binate variable (fall back to the first
    // variable of the support when the cover is unate).
    let var = most_binate_variable(cover)
        .or_else(|| cover.support().first().copied())
        .expect("non-empty cover without full cubes has a non-empty support");
    let comp0 = complement(&cover.cofactor(var, false));
    let comp1 = complement(&cover.cofactor(var, true));
    let mut result = Cover::empty(n);
    for c in comp0.iter() {
        result.push(c.with_value(var, CubeValue::Zero));
    }
    for c in comp1.iter() {
        result.push(c.with_value(var, CubeValue::One));
    }
    result.remove_contained_cubes();
    result
}

/// Complements a single cube (De Morgan): the complement of `l1·l2·…·lk` is
/// `l1' + l1·l2' + l1·l2·l3' + …`, which produces a disjoint cover.
fn complement_cube(cube: &Cube) -> Cover {
    let n = cube.num_vars();
    let mut result = Cover::empty(n);
    let mut prefix = Cube::full(n).expect("arity bounded by the input cube");
    for var in 0..n {
        match cube.value(var) {
            CubeValue::DontCare => {}
            CubeValue::One => {
                result.push(prefix.with_value(var, CubeValue::Zero));
                prefix = prefix.with_value(var, CubeValue::One);
            }
            CubeValue::Zero => {
                result.push(prefix.with_value(var, CubeValue::One));
                prefix = prefix.with_value(var, CubeValue::Zero);
            }
        }
    }
    result
}

/// Computes the off-set cover of an incompletely specified function given by
/// its on-set and dc-set covers: `complement(on ∪ dc)`.
pub fn off_set(on: &Cover, dc: &Cover) -> Cover {
    complement(&on.union(dc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::TruthTable;

    fn check_complement(cover: &Cover) {
        let comp = complement(cover);
        let tt = cover.to_truth_table();
        let comp_tt = comp.to_truth_table();
        assert_eq!(comp_tt, !&tt, "complement mismatch for {cover}");
    }

    #[test]
    fn complement_of_constants() {
        assert!(complement(&Cover::tautology(3)).is_empty());
        assert!(complement(&Cover::empty(3)).is_tautology_exhaustive());
    }

    #[test]
    fn complement_of_single_cube_is_disjoint() {
        let cube: Cube = "1-01".parse().unwrap();
        let comp = complement_cube(&cube);
        // Disjointness: no two cubes intersect.
        for (i, a) in comp.iter().enumerate() {
            for b in comp.iter().skip(i + 1) {
                assert!(!a.intersects(b));
            }
        }
        let total: u64 = comp.iter().map(Cube::minterm_count).sum();
        assert_eq!(total, 16 - cube.minterm_count());
    }

    #[test]
    fn complement_of_example_covers() {
        check_complement(&Cover::from_strs(4, &["11-1", "-011"]).unwrap());
        check_complement(&Cover::from_strs(3, &["1--", "-1-", "--1"]).unwrap());
        check_complement(&Cover::from_strs(4, &["0000"]).unwrap());
    }

    #[test]
    fn complement_of_random_covers_matches_truth_table() {
        let mut lcg = 0xDEADBEEFu64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for _ in 0..100 {
            let num_cubes = (next() % 5 + 1) as usize;
            let mut cubes = Vec::new();
            for _ in 0..num_cubes {
                let s: String = (0..5)
                    .map(|_| match next() % 3 {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect();
                cubes.push(s);
            }
            let refs: Vec<&str> = cubes.iter().map(String::as_str).collect();
            check_complement(&Cover::from_strs(5, &refs).unwrap());
        }
    }

    #[test]
    fn off_set_combines_on_and_dc() {
        let on = Cover::from_strs(2, &["11"]).unwrap();
        let dc = Cover::from_strs(2, &["10"]).unwrap();
        let off = off_set(&on, &dc);
        let expected = TruthTable::from_fn(2, |m| m & 1 == 0);
        assert_eq!(off.to_truth_table(), expected);
    }

    #[test]
    fn double_complement_is_identity_as_a_function() {
        let f = Cover::from_strs(4, &["1-0-", "01-1", "--11"]).unwrap();
        let back = complement(&complement(&f));
        assert_eq!(back.to_truth_table(), f.to_truth_table());
    }
}
