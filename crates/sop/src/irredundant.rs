//! The espresso IRREDUNDANT step: greedy removal of cubes that are covered by
//! the rest of the cover together with the don't-care set.

use boolfunc::Cover;

use crate::tautology::covers_cube;

/// Removes redundant cubes: a cube is redundant when the remaining cubes plus
/// the dc-set still cover it. Cubes are examined from largest literal count
/// (most specific) to smallest, so large prime cubes are preferentially kept.
///
/// ```rust
/// use boolfunc::Cover;
/// use sop::irredundant;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// // The middle cube x0 x2 is covered by the other two (consensus) only with
/// // the dc-set empty it is NOT redundant; with a full dc-set it is.
/// let f = Cover::from_strs(3, &["11-", "-01", "1-1"])?;
/// let kept = irredundant(&f, &Cover::empty(3));
/// assert_eq!(kept.num_cubes(), 2);
/// # Ok(())
/// # }
/// ```
pub fn irredundant(cover: &Cover, dc: &Cover) -> Cover {
    let n = cover.num_vars();
    let mut cubes: Vec<_> = cover.cubes().to_vec();
    // Try to drop the most specific (largest literal count) cubes first.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));

    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        // Build the cover of everything else that is still kept.
        let rest = Cover::from_cubes(
            n,
            cubes.iter().enumerate().filter(|(j, _)| *j != i && keep[*j]).map(|(_, c)| *c),
        );
        if covers_cube(&rest, dc, &cubes[i]) {
            keep[i] = false;
        }
    }
    Cover::from_cubes(n, cubes.iter().enumerate().filter(|(j, _)| keep[*j]).map(|(_, c)| *c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_cube_is_removed() {
        // x0 x1 + x1' x2 + x0 x2 : the consensus term x0 x2 is redundant.
        let f = Cover::from_strs(3, &["11-", "-01", "1-1"]).unwrap();
        let r = irredundant(&f, &Cover::empty(3));
        assert_eq!(r.num_cubes(), 2);
        assert_eq!(r.to_truth_table(), f.to_truth_table());
    }

    #[test]
    fn nothing_removed_from_an_irredundant_cover() {
        let f = Cover::from_strs(3, &["11-", "-01"]).unwrap();
        let r = irredundant(&f, &Cover::empty(3));
        assert_eq!(r.num_cubes(), 2);
    }

    #[test]
    fn dc_set_enables_removal() {
        // on = x0x1 + x0x1' ; with dc covering all of x0, one cube suffices…
        // actually each cube alone is needed; make dc cover the second cube.
        let f = Cover::from_strs(2, &["11", "10"]).unwrap();
        let dc = Cover::from_strs(2, &["10"]).unwrap();
        let r = irredundant(&f, &dc);
        assert_eq!(r.num_cubes(), 1);
        assert_eq!(r.cubes()[0].to_string(), "11");
    }

    #[test]
    fn result_still_covers_the_on_set_minus_dc() {
        let f = Cover::from_strs(4, &["11--", "1-1-", "1--1", "-111"]).unwrap();
        let dc = Cover::from_strs(4, &["0000"]).unwrap();
        let r = irredundant(&f, &dc);
        let f_tt = f.to_truth_table();
        let dc_tt = dc.to_truth_table();
        let r_tt = r.to_truth_table();
        // Every on-set minterm outside dc is still covered.
        assert!(f_tt.difference(&dc_tt).is_subset_of(&r_tt));
        // Nothing outside on ∪ dc got added (irredundant only removes cubes).
        assert!(r_tt.is_subset_of(&(&f_tt | &dc_tt)));
    }

    #[test]
    fn duplicate_cubes_are_collapsed() {
        let f = Cover::from_strs(3, &["1-1", "1-1", "0--"]).unwrap();
        let r = irredundant(&f, &Cover::empty(3));
        assert_eq!(r.num_cubes(), 2);
    }
}
