//! The top-level espresso iteration: EXPAND → IRREDUNDANT → REDUCE, repeated
//! until the cover cost stops improving.

use boolfunc::{Cover, Isf};

use crate::complement::off_set;
use crate::cost::Cost;
use crate::expand::expand;
use crate::irredundant::irredundant;
use crate::reduce::reduce;

/// Options controlling the espresso iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EspressoOptions {
    /// Maximum number of EXPAND/IRREDUNDANT/REDUCE rounds.
    pub max_iterations: usize,
    /// Whether to run the REDUCE perturbation step (disabling it gives a
    /// single-pass expand+irredundant minimization, faster but weaker).
    pub use_reduce: bool,
}

impl Default for EspressoOptions {
    fn default() -> Self {
        EspressoOptions { max_iterations: 8, use_reduce: true }
    }
}

/// Minimizes an incompletely specified function given by dense truth tables,
/// returning a prime, irredundant cover `F` with `on ⊆ F ⊆ on ∪ dc`.
///
/// ```rust
/// use boolfunc::Isf;
/// use sop::espresso;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// // The 2-out-of-3 majority function.
/// let f = Isf::from_cover_str(3, &["11-", "1-1", "-11"], &[])?;
/// let m = espresso(&f);
/// assert_eq!(m.num_cubes(), 3);
/// # Ok(())
/// # }
/// ```
pub fn espresso(f: &Isf) -> Cover {
    let on = f.on().to_minterm_cover();
    let dc = f.dc().to_minterm_cover();
    espresso_cover(&on, &dc, EspressoOptions::default())
}

/// Minimizes a function given by an on-set cover and a dc-set cover.
///
/// The input covers may be arbitrary (e.g. one cube per minterm, or an
/// existing SOP to improve); the result covers `on \ dc` and stays inside
/// `on ∪ dc`.
pub fn espresso_cover(on: &Cover, dc: &Cover, options: EspressoOptions) -> Cover {
    let n = on.num_vars();
    if on.is_empty() {
        return Cover::empty(n);
    }
    let off = off_set(on, dc);
    if off.is_empty() {
        return Cover::tautology(n);
    }

    let mut current = on.clone();
    current.remove_contained_cubes();
    current = expand(&current, &off);
    current = irredundant(&current, dc);
    let mut best = current.clone();
    let mut best_cost = Cost::of(&best);

    if !options.use_reduce {
        return best;
    }

    for _ in 0..options.max_iterations {
        current = reduce(&current, dc);
        current = expand(&current, &off);
        current = irredundant(&current, dc);
        let cost = Cost::of(&current);
        if cost < best_cost {
            best_cost = cost;
            best = current.clone();
        } else {
            break;
        }
    }
    best
}

/// Checks that `cover` is a legal realization of the incompletely specified
/// function `f`: it covers the on-set and stays inside `on ∪ dc`.
pub fn verify_cover(f: &Isf, cover: &Cover) -> bool {
    let tt = cover.to_truth_table();
    f.on().is_subset_of(&tt) && tt.is_subset_of(&f.max_completion())
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::TruthTable;

    #[test]
    fn minimizes_to_single_literal() {
        let f = Isf::from_cover_str(2, &["11", "10"], &[]).unwrap();
        let m = espresso(&f);
        assert!(verify_cover(&f, &m));
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.literal_count(), 1);
    }

    #[test]
    fn majority_function_needs_three_cubes() {
        let f = Isf::from_cover_str(3, &["11-", "1-1", "-11"], &[]).unwrap();
        let m = espresso(&f);
        assert!(verify_cover(&f, &m));
        assert_eq!(m.num_cubes(), 3);
        assert_eq!(m.literal_count(), 6);
    }

    #[test]
    fn constant_functions() {
        let zero = Isf::completely_specified(TruthTable::zero(3));
        assert!(espresso(&zero).is_empty());
        let one = Isf::completely_specified(TruthTable::one(3));
        let m = espresso(&one);
        assert_eq!(m.num_cubes(), 1);
        assert_eq!(m.literal_count(), 0);
    }

    #[test]
    fn dont_cares_reduce_cost() {
        // Fig. 1 of the paper: h has on-set = f_on and a large dc-set; its
        // minimal SOP is x0 + x2 (2 literals).
        let f = Isf::from_cover_str(4, &["11-1", "-111"], &[]).unwrap();
        let g = Cover::from_strs(4, &["-1-1"]).unwrap().to_truth_table();
        // h_on = f_on, h_dc = g_off ∪ f_dc
        let h = Isf::new(f.on().clone(), !&g).unwrap();
        let m = espresso(&h);
        assert!(verify_cover(&h, &m));
        assert!(m.literal_count() <= 2, "expected at most 2 literals, got {}", m.literal_count());
    }

    #[test]
    fn xor_function_is_not_over_minimized() {
        let f = Isf::from_cover_str(3, &["100", "010", "001", "111"], &[]).unwrap();
        let m = espresso(&f);
        assert!(verify_cover(&f, &m));
        assert_eq!(m.num_cubes(), 4);
        assert_eq!(m.literal_count(), 12);
    }

    #[test]
    fn random_functions_verify_and_do_not_regress() {
        let mut lcg = 0xABCDEFu64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for _ in 0..30 {
            let on = TruthTable::from_fn(5, |_| next() % 3 == 0);
            let dc = TruthTable::from_fn(5, |_| next() % 4 == 0).difference(&on);
            let f = Isf::new(on.clone(), dc).unwrap();
            let m = espresso(&f);
            assert!(verify_cover(&f, &m));
            // Never worse than the trivial minterm cover.
            assert!(m.num_cubes() <= on.count_ones() as usize);
        }
    }

    #[test]
    fn options_without_reduce_still_verify() {
        let f = Isf::from_cover_str(4, &["11--", "1-1-", "1--1", "-111", "0000"], &[]).unwrap();
        let on = f.on().to_minterm_cover();
        let m = espresso_cover(
            &on,
            &Cover::empty(4),
            EspressoOptions { max_iterations: 1, use_reduce: false },
        );
        assert!(verify_cover(&f, &m));
    }
}
