//! The espresso EXPAND step.
//!
//! Each cube of the cover is enlarged (literals are removed) as long as the
//! enlarged cube stays disjoint from the off-set of the function. Enlarged
//! cubes frequently swallow other cubes of the cover, which are then dropped.

use boolfunc::{Cover, Cube, CubeValue};

/// Expands every cube of `cover` against the off-set `off`, removing covered
/// cubes along the way.
///
/// `cover` must be a cover of the on-set (possibly using some don't-cares)
/// and `off` must be a cover of the off-set; the result is a prime-ish cover
/// whose cubes do not intersect `off`.
///
/// ```rust
/// use boolfunc::Cover;
/// use sop::{complement, expand};
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// // f = x0 x1 + x0 x1': both cubes expand to x0.
/// let f = Cover::from_strs(2, &["11", "10"])?;
/// let off = complement(&f);
/// let expanded = expand(&f, &off);
/// assert_eq!(expanded.num_cubes(), 1);
/// assert_eq!(expanded.literal_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn expand(cover: &Cover, off: &Cover) -> Cover {
    let n = cover.num_vars();
    // Process cubes from largest to smallest: big cubes are more likely to
    // expand into primes that swallow the small ones.
    let mut order: Vec<usize> = (0..cover.num_cubes()).collect();
    order.sort_by_key(|&i| cover.cubes()[i].literal_count());

    let mut covered = vec![false; cover.num_cubes()];
    let mut result = Cover::empty(n);

    for &idx in &order {
        if covered[idx] {
            continue;
        }
        let expanded = expand_cube(&cover.cubes()[idx], off);
        // Mark every remaining cube swallowed by the expansion.
        for (j, cube) in cover.cubes().iter().enumerate() {
            if !covered[j] && expanded.contains(cube) {
                covered[j] = true;
            }
        }
        result.push(expanded);
    }
    result.remove_contained_cubes();
    result
}

/// Expands a single cube against the off-set: literals are removed greedily
/// (in an order that prefers freeing the variable blocking the fewest off-set
/// cubes) while the cube stays disjoint from `off`.
pub fn expand_cube(cube: &Cube, off: &Cover) -> Cube {
    let mut current = *cube;
    let mut changed = true;
    while changed {
        changed = false;
        // Candidate literals, cheapest (least blocking) first.
        let mut candidates: Vec<(usize, usize)> = (0..current.num_vars())
            .filter(|&v| current.value(v) != CubeValue::DontCare)
            .map(|v| {
                let relaxed = current.with_value(v, CubeValue::DontCare);
                let blocking = off.iter().filter(|o| relaxed.intersects(o)).count();
                (blocking, v)
            })
            .collect();
        candidates.sort();
        for (blocking, var) in candidates {
            if blocking > 0 {
                continue;
            }
            let relaxed = current.with_value(var, CubeValue::DontCare);
            // Safe to raise: the relaxed cube still avoids the off-set.
            if off.iter().all(|o| !relaxed.intersects(o)) {
                current = relaxed;
                changed = true;
                break;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complement::complement;

    #[test]
    fn expand_cube_reaches_a_prime() {
        // f = x0 (off-set is x0'), the cube x0 x1 must expand to x0.
        let off = Cover::from_strs(2, &["0-"]).unwrap();
        let cube: Cube = "11".parse().unwrap();
        assert_eq!(expand_cube(&cube, &off).to_string(), "1-");
    }

    #[test]
    fn expand_does_not_touch_the_off_set() {
        let on = Cover::from_strs(4, &["1100", "1111", "0011"]).unwrap();
        let off = complement(&on);
        let expanded = expand(&on, &off);
        let off_tt = off.to_truth_table();
        for cube in expanded.iter() {
            for m in cube.minterms() {
                assert!(!off_tt.get(m), "expanded cube {cube} hits off-set minterm {m}");
            }
        }
        // Every original on-set minterm is still covered.
        assert!(on.to_truth_table().is_subset_of(&expanded.to_truth_table()));
    }

    #[test]
    fn expansion_uses_dont_cares() {
        // on = x0 x1, dc = x0 x1'; with the dc available, the cube expands to x0.
        let on = Cover::from_strs(2, &["11"]).unwrap();
        let dc = Cover::from_strs(2, &["10"]).unwrap();
        let off = complement(&on.union(&dc));
        let expanded = expand(&on, &off);
        assert_eq!(expanded.num_cubes(), 1);
        assert_eq!(expanded.cubes()[0].to_string(), "1-");
    }

    #[test]
    fn expanded_cover_swallows_contained_cubes() {
        let on = Cover::from_strs(3, &["111", "110", "101", "100"]).unwrap();
        let off = complement(&on);
        let expanded = expand(&on, &off);
        assert_eq!(expanded.num_cubes(), 1);
        assert_eq!(expanded.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn already_prime_cover_is_unchanged_functionally() {
        let on = Cover::from_strs(3, &["11-", "0-1"]).unwrap();
        let off = complement(&on);
        let expanded = expand(&on, &off);
        assert_eq!(expanded.to_truth_table(), on.to_truth_table());
    }
}
