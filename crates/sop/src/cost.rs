//! The two-level cost measure used to drive the espresso iteration.

use boolfunc::Cover;

/// Cost of a cover: number of cubes first, then total literal count.
///
/// This is the lexicographic objective classical espresso minimizes and the
/// quantity reported (as literal counts) in the worked examples of the paper.
///
/// ```rust
/// use boolfunc::Cover;
/// use sop::Cost;
///
/// # fn main() -> Result<(), boolfunc::BoolFuncError> {
/// let a = Cost::of(&Cover::from_strs(3, &["11-", "0-1"])?);
/// let b = Cost::of(&Cover::from_strs(3, &["1--"])?);
/// assert!(b < a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cost {
    /// Number of product terms.
    pub cubes: usize,
    /// Total number of literals.
    pub literals: usize,
}

impl Cost {
    /// Computes the cost of a cover.
    pub fn of(cover: &Cover) -> Self {
        Cost { cubes: cover.num_cubes(), literals: cover.literal_count() }
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cubes / {} literals", self.cubes, self.literals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_prefers_fewer_cubes_then_fewer_literals() {
        let small = Cost { cubes: 1, literals: 5 };
        let more_cubes = Cost { cubes: 2, literals: 2 };
        let more_lits = Cost { cubes: 1, literals: 6 };
        assert!(small < more_cubes);
        assert!(small < more_lits);
    }

    #[test]
    fn display() {
        let c = Cost { cubes: 3, literals: 7 };
        assert_eq!(c.to_string(), "3 cubes / 7 literals");
    }
}
