//! The decomposition sequence of the introduction: a family of `f = g_i · h_i`
//! in which logic is shifted from the divisor to the quotient, from
//! `g_0 = f, h_0 = 1` to `g_n = 1, h_n = f`.
//!
//! Paper reference: the decomposition-sequence discussion of Section I
//! (Introduction), realised with the Section III quotient machinery.
//!
//! Run with `cargo run --example decomposition_sequence`.

use bidecomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = Isf::from_cover_str(4, &["11-1", "-111", "0-00"], &[])?;

    let budgets = bidecomp::sequence::default_budgets();
    let sequence = bidecomp::decomposition_sequence(&f, BinaryOp::And, &budgets)?;

    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10}",
        "budget%", "errors", "lits(g)", "lits(h)", "lits(g·h)"
    );
    for (budget, d) in budgets.iter().zip(&sequence) {
        assert!(d.verified);
        println!(
            "{:>8.1} {:>8} {:>10} {:>10} {:>10}",
            budget * 100.0,
            d.approximation.total_errors(),
            d.g_form.literal_count(),
            d.h_form.literal_count(),
            d.g_form.literal_count() + d.h_form.literal_count()
        );
    }
    println!("\nThe endpoints match the paper's introduction:");
    println!(" - zero budget: g is exact and h collapses towards the constant 1;");
    println!(" - full budget: g collapses towards the constant 1 and h carries f.");
    Ok(())
}
