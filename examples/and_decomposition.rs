//! The worked AND example of Fig. 1, step by step: choose an
//! over-approximation, read the quotient off Table II, and compare literal
//! counts of the direct SOP and of the bi-decomposed form.
//!
//! Paper reference: Fig. 1 (the worked AND decomposition) together with
//! Lemma 1 and Corollary 1 — the AND row of Table II.
//!
//! Run with `cargo run --example and_decomposition`.

use bidecomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // f = x0 x1 x3 + x1 x2 x3 (6 literals as a minimal SOP).
    let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;
    let f_sop = sop::espresso(&f);
    println!("f            = {f_sop}   ({} literals)", f_sop.literal_count());

    // Adding the single minterm x0' x1 x2' x3 to the on-set turns f into
    // g = x1 x3, a much cheaper function.
    let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();
    let stats = bidecomp::classify_approximation(&f, &g);
    println!(
        "g            = x1·x3      (0→1 approximation, {} error, rate {:.1}%)",
        stats.zero_to_one,
        stats.error_rate * 100.0
    );

    // Table II, AND row: h_on = f_on, h_dc = g_off ∪ f_dc.
    let h = full_quotient(&f, &g, BinaryOp::And)?;
    let h_sop = sop::espresso(&h);
    println!("h            = {h_sop}   ({} literals)", h_sop.literal_count());

    // The bi-decomposed realization f = g · h.
    let g_sop = sop::espresso(&Isf::completely_specified(g.clone()));
    let total = g_sop.literal_count() + h_sop.literal_count();
    println!("f = g · h uses {total} literals instead of {}", f_sop.literal_count());

    assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
    assert!(total < f_sop.literal_count());

    // The same flexibility, quantified.
    let report = bidecomp::FlexibilityReport::compute(&f, &g, BinaryOp::And);
    println!(
        "flexibility: {} of 16 minterms are don't-cares of h ({} forced to 0)",
        report.h_dc_count, report.h_off_count
    );
    Ok(())
}
