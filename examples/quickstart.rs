//! Quickstart: compute the full quotient of a bi-decomposition and check it.
//!
//! Paper reference: Fig. 1 and the AND row of Table II — the worked example
//! the paper opens with, run through the whole pipeline (quotient, SOP and
//! 2-SPP re-synthesis, mapped-area gain).
//!
//! Run with `cargo run --example quickstart`.

use bidecomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The function of Fig. 1 of the paper: f = x0 x1 x3 + x1 x2 x3.
    let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;

    // A 0→1 over-approximation obtained by adding one minterm: g = x1 x3.
    let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();

    // The full quotient for the AND operator (Table II, first row).
    let h = full_quotient(&f, &g, BinaryOp::And)?;
    println!("h_on  has {} minterms", h.on().count_ones());
    println!("h_dc  has {} minterms (the flexibility)", h.dc().count_ones());
    println!("h_off has {} minterms (the errors to correct)", h.off().count_ones());

    // The decomposition holds for every completion of h.
    assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));

    // Exploit the flexibility: minimize h as an SOP and as a 2-SPP form.
    let h_sop = sop::espresso(&h);
    let h_spp = SppSynthesizer::new().synthesize(&h);
    println!("h minimized as SOP:   {h_sop} ({} literals)", h_sop.literal_count());
    println!("h minimized as 2-SPP: {h_spp} ({} literals)", h_spp.literal_count());

    // Or run the whole paper pipeline (synthesize, approximate, divide, map).
    let plan = DecompositionPlan::new(BinaryOp::And, bidecomp::ApproxStrategy::FullExpansion);
    let result = plan.decompose(&f)?;
    println!(
        "pipeline: area(f) = {:.1}, area(g·h) = {:.1}, gain = {:.1}%, error rate = {:.1}%",
        result.area_f,
        result.area_bidecomposition,
        result.gain_percent(),
        result.error_percent()
    );
    Ok(())
}
