//! The full Table II in action: for each of the ten operators, derive a valid
//! divisor for a benchmark output, compute the full quotient, and verify both
//! the lemma (correctness) and the corollary (maximal flexibility).
//!
//! Paper reference: Tables I and II in full — all ten non-degenerate binary
//! operators, their divisor requirements, and their quotient formulas.
//!
//! Run with `cargo run --example all_operators`.

use bidecomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let z4 = benchmarks::arithmetic::z4();
    let f = &z4.outputs()[0];

    println!(
        "{:<6} {:<24} {:>9} {:>9} {:>9} {:>10}",
        "op", "divisor requirement", "|h_on|", "|h_dc|", "|h_off|", "verified"
    );
    for op in BinaryOp::all() {
        let plan =
            DecompositionPlan::new(op, bidecomp::ApproxStrategy::Bounded { max_error_rate: 0.1 });
        let result = plan.decompose(f)?;
        let ok = bidecomp::verify_maximal_flexibility(f, &result.g_table, &result.h, op);
        println!(
            "{:<6} {:<24} {:>9} {:>9} {:>9} {:>10}",
            op.symbol(),
            short_requirement(op),
            result.h.on().count_ones(),
            result.h.dc().count_ones(),
            result.h.off().count_ones(),
            result.verified && ok
        );
        assert!(result.verified && ok);
    }
    println!(
        "\nEvery operator of Table I admits a full quotient with maximal flexibility (Table II)."
    );
    Ok(())
}

fn short_requirement(op: BinaryOp) -> &'static str {
    use bidecomp::OperatorClass::*;
    match (op.class(), op.divisor_complemented()) {
        (AndLike, false) => "0→1 approx of f",
        (AndLike, true) => "1→0 approx of f'",
        (OrLike, false) => "1→0 approx of f",
        (OrLike, true) => "0→1 approx of f'",
        (XorLike, _) => "any 0↔1 approx",
    }
}
