//! The recursive bi-decomposition synthesis engine, end to end: take one
//! function, let the portfolio pick an operator and divisor strategy at
//! every level, and compare the multi-level network against the flat 2-SPP
//! realization.
//!
//! Paper reference: Section IV (the approximate-divide-resynthesize flow)
//! applied recursively, the multi-level direction of the QBF-based
//! bi-decomposition literature cited in the introduction.
//!
//! Run with `cargo run --example recursive_synthesis`.

use bidecomp::recursive::{RecursiveConfig, RecursiveSynthesizer};
use bidecomp::ApproxStrategy;
use bidecomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The z4 adder's third sum bit: enough structure for the recursion to
    // find multi-level sharing a flat form cannot express.
    let instance = Suite::by_name("z4").expect("z4 is in the table4 suite");
    let f = &instance.outputs()[3];

    // The default portfolio tries AND, the non-implication `⇏`, and OR,
    // all with the paper's full-expansion divisor. Adding a bounded-error
    // entry demonstrates the knob; each level picks whichever candidate
    // maps smallest.
    let mut config = RecursiveConfig::default();
    config.portfolio.push((BinaryOp::And, ApproxStrategy::Bounded { max_error_rate: 0.1 }));
    config.max_depth = 4;

    let synthesizer = RecursiveSynthesizer::new(config);
    let result = synthesizer.synthesize(f)?;

    println!(
        "flat 2-SPP : {} literals, mapped area {:.1}",
        result.flat_form.literal_count(),
        result.flat_area
    );
    println!(
        "recursive  : {} gates, {} levels, mapped area {:.1} (gain {:.1}%)",
        result.gate_count(),
        result.tree.depth(),
        result.mapped_area,
        result.gain_percent()
    );
    println!("\ndecomposition tree:\n{}", result.tree);

    // The synthesized multi-level network renders as Graphviz DOT (pipe it
    // into `dot -Tsvg` to see the shared AND/OR/XOR structure the flat form
    // cannot express).
    let dot = result.network.to_dot("z4_sum3");
    let path = std::env::temp_dir().join("z4_sum3.dot");
    std::fs::write(&path, &dot)?;
    println!(
        "wrote {} ({} nodes in the drawing; render with `dot -Tsvg {}`)",
        path.display(),
        dot.lines().filter(|l| l.contains("label=")).count(),
        path.display(),
    );

    // The engine has already checked the network exhaustively against the
    // care set of f; `verified` reports the outcome.
    assert!(result.verified);
    assert!(result.mapped_area <= result.flat_area);
    Ok(())
}
