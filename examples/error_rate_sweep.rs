//! Sweep the approximation error budget and watch the trade-off the paper
//! discusses: a coarser divisor is cheaper, but the quotient has to correct
//! more errors, so the overall bi-decomposed area bottoms out somewhere in
//! between.
//!
//! Paper reference: the low- versus high-error-rate comparison between
//! Table III and Table IV, swept continuously on one benchmark output.
//!
//! Run with `cargo run --example error_rate_sweep`.

use bidecomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = benchmarks::arithmetic::dist();
    let f = &instance.outputs()[2];

    println!("benchmark {} output 2 ({} inputs)", instance.name(), instance.num_inputs());
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "budget%", "err%", "area g", "area h", "area g·h", "gain%"
    );
    for budget in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let plan = DecompositionPlan::new(
            BinaryOp::And,
            bidecomp::ApproxStrategy::Bounded { max_error_rate: budget },
        );
        let d = plan.decompose(f)?;
        assert!(d.verified);
        println!(
            "{:>8.1} {:>10.2} {:>10.1} {:>10.1} {:>10.1} {:>8.2}",
            budget * 100.0,
            d.error_percent(),
            d.area_g,
            d.area_h,
            d.area_bidecomposition,
            d.gain_percent()
        );
    }
    Ok(())
}
