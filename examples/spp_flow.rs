//! The 2-SPP flow of Fig. 2 and Section IV: synthesize `f` as a three-level
//! XOR-AND-OR form, over-approximate it by pseudoproduct expansion, and let
//! the quotient correct the introduced errors.
//!
//! Paper reference: Fig. 2 and the Section IV flow (2-SPP synthesis,
//! pseudoproduct expansion, quotient correction).
//!
//! Run with `cargo run --example spp_flow`.

use bidecomposition::prelude::*;
use spp::BoundedExpansion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // f = x0 (x2 ⊕ x3) + x1 (x2 ⊕ x3): 12 SOP literals, 6 2-SPP literals.
    let f = Isf::from_cover_str(4, &["1-10", "1-01", "-110", "-101"], &[])?;

    let synthesizer = SppSynthesizer::new();
    let f_sop = sop::espresso(&f);
    let f_spp = synthesizer.synthesize(&f);
    println!("SOP of f:    {f_sop}  ({} literals)", f_sop.literal_count());
    println!("2-SPP of f:  {f_spp}  ({} literals)", f_spp.literal_count());

    // Over-approximate by expanding pseudoproducts within a 25% error budget.
    let approx = BoundedExpansion::new(0.25).approximate(&f_spp, &f);
    println!(
        "expansion picks g = {}  ({} literals, {} 0→1 errors)",
        approx.g,
        approx.g.literal_count(),
        approx.errors
    );

    // The quotient corrects exactly those errors.
    let h = full_quotient(&f, &approx.g_table, BinaryOp::And)?;
    assert_eq!(h.off().count_ones(), approx.errors);
    let h_spp = synthesizer.synthesize(&h);
    println!("quotient h = {h_spp}  ({} literals)", h_spp.literal_count());

    assert!(verify_decomposition(&f, &approx.g_table, &h, BinaryOp::And));

    // Map everything with the mcnc-like library and compare areas.
    let model = AreaModel::mcnc();
    let area_f = model.spp_area(&f_spp);
    let area_bidec = model.bidecomposition_area(&approx.g, &h_spp, techmap::CombineOp::And);
    println!("mapped area: f = {area_f:.1}, g·h = {area_bidec:.1}");
    Ok(())
}
