//! # bidecomposition
//!
//! Facade crate for the workspace reproducing *“Computing the full quotient in
//! bi-decomposition by approximation”* (Bernasconi, Ciriani, Cortadella, Villa —
//! DATE 2020).
//!
//! The workspace implements, from scratch:
//!
//! * [`boolfunc`] — cubes, covers, dense truth tables, incompletely specified
//!   functions and espresso-style PLA I/O;
//! * [`bdd`] — a reduced ordered BDD package (unique table, ITE, quantification,
//!   ISOP extraction);
//! * [`sop`] — an espresso-style two-level minimizer;
//! * [`spp`] — 2-SPP (three-level XOR-AND-OR) forms, their heuristic minimization
//!   and the 0→1 approximation by pseudoproduct expansion;
//! * [`techmap`] — a gate library and tree-covering technology mapper used for the
//!   area numbers of the evaluation;
//! * [`obs`] — the zero-dependency observability runtime (registry of atomic
//!   counters/gauges, deterministic log-bucketed latency histograms, span
//!   timers) threaded through the engine, BDD managers, cache and server;
//! * [`sat`] — a small deterministic CDCL SAT solver and Tseitin CNF builder,
//!   the engine behind [`bidecomp::Oracle`] (the third, structurally
//!   independent correctness judge next to the dense and BDD verifiers);
//! * [`bidecomp`] — the paper's contribution: the full quotient `h` with maximal
//!   flexibility for all ten binary operators (Table II), verification of
//!   Lemmas 1–5, and end-to-end decomposition drivers;
//! * [`benchmarks`] — regenerated / synthetic stand-ins for the LGSynth91 instances
//!   used in Tables III and IV;
//! * [`service`] — the serving layer: NPN-canonical result caching (sharded,
//!   CLOCK-evicted) and the persistent `bidecompd` TCP job server.
//!
//! ## Quickstart
//!
//! ```rust
//! use bidecomposition::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fig. 1 of the paper: f = x0 x1 x3 + x1 x2 x3 over 4 variables.
//! let f = Isf::from_cover_str(4, &["11-1", "-111"], &[])?;
//! // g = x1 x3: a 0->1 over-approximation of f.
//! let g = Cover::from_strs(4, &["-1-1"])?.to_truth_table();
//! let h = full_quotient(&f, &g, BinaryOp::And)?;
//! assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
//! # Ok(())
//! # }
//! ```

pub use bdd;
pub use benchmarks;
pub use bidecomp;
pub use boolfunc;
pub use obs;
pub use sat;
pub use service;
pub use sop;
pub use spp;
pub use techmap;

/// Convenient re-exports of the most commonly used items across the workspace.
pub mod prelude {
    pub use bdd::{Bdd, BddManager};
    pub use benchmarks::{BenchmarkInstance, Suite};
    pub use bidecomp::{
        full_quotient, verify_decomposition, ApproxKind, BiDecomposition, BinaryOp,
        DecompositionPlan, Oracle, Quotient, RecursiveSynthesizer,
    };
    pub use boolfunc::{Cover, Cube, Isf, TruthTable};
    pub use sop::espresso;
    pub use spp::{SppForm, SppSynthesizer};
    pub use techmap::{AreaModel, GateLibrary};
}
