//! Property-style tests for the core invariants of Table II: for every
//! operator and every valid divisor, the full quotient realizes `f` under any
//! completion, is maximally flexible, and its characteristic sets partition
//! the minterm space.
//!
//! The random cases are driven by the workspace's seeded deterministic
//! generator ([`benchmarks::DetRng`]) instead of `proptest`, so the build has
//! no third-party dependencies and every run exercises the same 256 cases per
//! property.

use benchmarks::DetRng;
use bidecomp::{quotient_sets, verify_maximal_flexibility};
use bidecomposition::prelude::*;
use boolfunc::TruthTable;

const NUM_VARS: usize = 5;
const SPACE: u64 = 1 << NUM_VARS;
const CASES: usize = 256;

fn truth_table_from_mask(mask: u64) -> TruthTable {
    TruthTable::from_fn(NUM_VARS, |m| mask >> m & 1 == 1)
}

/// An arbitrary incompletely specified function over `NUM_VARS` variables.
fn random_isf(rng: &mut DetRng) -> Isf {
    let on = truth_table_from_mask(rng.gen_mask(SPACE as u32));
    let dc = truth_table_from_mask(rng.gen_mask(SPACE as u32)).difference(&on);
    Isf::new(on, dc).expect("made disjoint above")
}

/// Derives a valid divisor for (`f`, `op`) from a random mask by projecting it
/// onto the Table II side condition.
fn make_valid_divisor(f: &Isf, op: BinaryOp, mask: u64) -> TruthTable {
    let random = truth_table_from_mask(mask);
    match op {
        BinaryOp::And | BinaryOp::NonImplication => f.on() | &random,
        BinaryOp::Or | BinaryOp::ConverseImplication => f.on() & &random,
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => &f.off() & &random,
        BinaryOp::Implication | BinaryOp::Nand => &f.off() | &random,
        BinaryOp::Xor | BinaryOp::Xnor => random,
    }
}

#[test]
fn quotient_realizes_f_and_is_maximally_flexible() {
    let mut rng = DetRng::seed_from_u64(0x7AB1E2);
    for _ in 0..CASES {
        let f = random_isf(&mut rng);
        for op in BinaryOp::all() {
            let g = make_valid_divisor(&f, op, rng.gen_mask(SPACE as u32));
            let h = full_quotient(&f, &g, op)
                .expect("divisor satisfies the side condition by construction");
            assert!(verify_decomposition(&f, &g, &h, op), "{op}: Lemma violated");
            assert!(verify_maximal_flexibility(&f, &g, &h, op), "{op}: Corollary violated");
        }
    }
}

#[test]
fn quotient_sets_partition_the_space() {
    let mut rng = DetRng::seed_from_u64(0x9A2717);
    for _ in 0..CASES {
        let f = random_isf(&mut rng);
        for op in BinaryOp::all() {
            let g = make_valid_divisor(&f, op, rng.gen_mask(SPACE as u32));
            let sets = quotient_sets(&f, &g, op);
            assert!((&sets.on & &sets.dc).is_zero());
            assert!((&sets.on & &sets.off).is_zero());
            assert!((&sets.dc & &sets.off).is_zero());
            assert_eq!(sets.on.count_ones() + sets.dc.count_ones() + sets.off.count_ones(), SPACE);
            // The quotient's dc-set always contains the original dc-set.
            assert!(f.dc().is_subset_of(&sets.dc));
        }
    }
}

#[test]
fn better_divisors_never_reduce_flexibility_for_and() {
    let mut rng = DetRng::seed_from_u64(0xF1E);
    for _ in 0..CASES {
        // g2 ⊇ g1 ⊇ f_on: a coarser over-approximation can only move minterms
        // from the quotient's dc-set to its off-set.
        let f = random_isf(&mut rng);
        let g1 = f.on() | &truth_table_from_mask(rng.gen_mask(SPACE as u32));
        let g2 = &g1 | &truth_table_from_mask(rng.gen_mask(SPACE as u32));
        let h1 = quotient_sets(&f, &g1, BinaryOp::And);
        let h2 = quotient_sets(&f, &g2, BinaryOp::And);
        assert!(h2.dc.is_subset_of(&h1.dc));
        assert!(h1.off.is_subset_of(&h2.off));
        assert_eq!(&h1.on, &h2.on);
    }
}

#[test]
fn xor_quotient_composes_back_exactly() {
    let mut rng = DetRng::seed_from_u64(0x0C0FFEE);
    for _ in 0..CASES {
        // For XOR the quotient is the error function: g ⊕ h_on agrees with f
        // on every care minterm.
        let f = random_isf(&mut rng);
        let g = truth_table_from_mask(rng.gen_mask(SPACE as u32));
        let h = full_quotient(&f, &g, BinaryOp::Xor).expect("any divisor is valid for XOR");
        let recomposed = &g ^ h.on();
        let care = f.care();
        assert_eq!(&recomposed & &care, f.on() & &care);
    }
}
