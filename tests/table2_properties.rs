//! Property-based tests (proptest) for the core invariants of Table II:
//! for every operator and every valid divisor, the full quotient realizes `f`
//! under any completion, is maximally flexible, and its characteristic sets
//! partition the minterm space.

use proptest::prelude::*;

use bidecomposition::prelude::*;
use bidecomp::{quotient_sets, verify_maximal_flexibility};
use boolfunc::TruthTable;

const NUM_VARS: usize = 5;
const SPACE: u64 = 1 << NUM_VARS;

fn truth_table_from_mask(mask: u64) -> TruthTable {
    TruthTable::from_fn(NUM_VARS, |m| mask >> m & 1 == 1)
}

/// An arbitrary incompletely specified function over `NUM_VARS` variables.
fn arb_isf() -> impl Strategy<Value = Isf> {
    (0u64..(1 << SPACE), 0u64..(1 << SPACE)).prop_map(|(on_mask, dc_mask)| {
        let on = truth_table_from_mask(on_mask);
        let dc = truth_table_from_mask(dc_mask).difference(&on);
        Isf::new(on, dc).expect("made disjoint above")
    })
}

fn arb_op() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(BinaryOp::all().to_vec())
}

/// Derives a valid divisor for (`f`, `op`) from a random mask by projecting it
/// onto the Table II side condition.
fn make_valid_divisor(f: &Isf, op: BinaryOp, mask: u64) -> TruthTable {
    let random = truth_table_from_mask(mask);
    match op {
        BinaryOp::And | BinaryOp::NonImplication => f.on() | &random,
        BinaryOp::Or | BinaryOp::ConverseImplication => f.on() & &random,
        BinaryOp::ConverseNonImplication | BinaryOp::Nor => &f.off() & &random,
        BinaryOp::Implication | BinaryOp::Nand => &f.off() | &random,
        BinaryOp::Xor | BinaryOp::Xnor => random,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quotient_realizes_f_and_is_maximally_flexible(
        f in arb_isf(),
        op in arb_op(),
        mask in 0u64..(1 << SPACE),
    ) {
        let g = make_valid_divisor(&f, op, mask);
        let h = full_quotient(&f, &g, op).expect("divisor satisfies the side condition by construction");
        prop_assert!(verify_decomposition(&f, &g, &h, op));
        prop_assert!(verify_maximal_flexibility(&f, &g, &h, op));
    }

    #[test]
    fn quotient_sets_partition_the_space(
        f in arb_isf(),
        op in arb_op(),
        mask in 0u64..(1 << SPACE),
    ) {
        let g = make_valid_divisor(&f, op, mask);
        let sets = quotient_sets(&f, &g, op);
        prop_assert!((&sets.on & &sets.dc).is_zero());
        prop_assert!((&sets.on & &sets.off).is_zero());
        prop_assert!((&sets.dc & &sets.off).is_zero());
        prop_assert_eq!(
            sets.on.count_ones() + sets.dc.count_ones() + sets.off.count_ones(),
            SPACE
        );
        // The quotient's dc-set always contains the original dc-set.
        prop_assert!(f.dc().is_subset_of(&sets.dc));
    }

    #[test]
    fn better_divisors_never_reduce_flexibility_for_and(
        f in arb_isf(),
        mask in 0u64..(1 << SPACE),
        extra in 0u64..(1 << SPACE),
    ) {
        // g2 ⊇ g1 ⊇ f_on: a coarser over-approximation can only move minterms
        // from the quotient's dc-set to its off-set.
        let g1 = f.on() | &truth_table_from_mask(mask);
        let g2 = &g1 | &truth_table_from_mask(extra);
        let h1 = quotient_sets(&f, &g1, BinaryOp::And);
        let h2 = quotient_sets(&f, &g2, BinaryOp::And);
        prop_assert!(h2.dc.is_subset_of(&h1.dc));
        prop_assert!(h1.off.is_subset_of(&h2.off));
        prop_assert_eq!(&h1.on, &h2.on);
    }

    #[test]
    fn xor_quotient_composes_back_exactly(
        f in arb_isf(),
        mask in 0u64..(1 << SPACE),
    ) {
        // For XOR the quotient is the error function: g ⊕ h_on agrees with f
        // on every care minterm.
        let g = truth_table_from_mask(mask);
        let h = full_quotient(&f, &g, BinaryOp::Xor).expect("any divisor is valid for XOR");
        let recomposed = &g ^ h.on();
        let care = f.care();
        prop_assert_eq!(&recomposed & &care, f.on() & &care);
    }
}
