//! Cross-crate integration tests: PLA parsing → 2-SPP synthesis →
//! approximation → full quotient → re-synthesis → technology mapping,
//! exercised end-to-end on the smoke benchmark suite.

use bidecomp::ApproxStrategy;
use bidecomposition::prelude::*;

#[test]
fn full_pipeline_on_the_smoke_suite_produces_verified_decompositions() {
    for instance in Suite::smoke().instances() {
        for (o, f) in instance.outputs().iter().enumerate() {
            for op in BinaryOp::experimental() {
                let plan = DecompositionPlan::new(op, ApproxStrategy::FullExpansion);
                let d =
                    plan.decompose(f).unwrap_or_else(|e| panic!("{instance} output {o} {op}: {e}"));
                assert!(d.verified, "{instance} output {o} {op}: verification failed");
                assert!(d.approximation.one_to_zero == 0, "{op} requires a 0→1 approximation");
                assert!(d.area_f.is_finite() && d.area_bidecomposition.is_finite());
                // The realized forms must actually implement their functions.
                assert!(d.h_form.matches(&d.h), "h_form does not realize the quotient");
            }
        }
    }
}

#[test]
fn pla_round_trip_feeds_the_same_functions_into_the_pipeline() {
    let instance = benchmarks::arithmetic::adder("adr2", 2);
    let pla_text = instance.to_pla().to_string();
    let parsed: boolfunc::Pla = pla_text.parse().expect("generated PLA must parse");
    let reparsed = parsed.output_isfs().expect("within dense limits");
    assert_eq!(reparsed.len(), instance.num_outputs());
    for (original, back) in instance.outputs().iter().zip(&reparsed) {
        assert_eq!(original.on(), back.on());
        assert_eq!(original.dc(), back.dc());
    }
}

#[test]
fn bounded_strategy_never_exceeds_its_budget_on_benchmarks() {
    let budget = 0.05;
    let instance = benchmarks::arithmetic::z4();
    for f in instance.outputs() {
        let plan = DecompositionPlan::new(
            BinaryOp::And,
            ApproxStrategy::Bounded { max_error_rate: budget },
        );
        let d = plan.decompose(f).expect("AND accepts any 0→1 divisor");
        assert!(d.approximation.error_rate <= budget + 1e-9);
        assert!(d.verified);
    }
}

#[test]
fn quotient_flexibility_grows_with_the_error_rate() {
    // Theory (Section III): the larger the divisor's on-set, the larger the
    // dc-set of the quotient for AND decompositions.
    let instance = benchmarks::arithmetic::adr4();
    let f = &instance.outputs()[0];
    let tight =
        DecompositionPlan::new(BinaryOp::And, ApproxStrategy::Bounded { max_error_rate: 0.0 })
            .decompose(f)
            .unwrap();
    let loose =
        DecompositionPlan::new(BinaryOp::And, ApproxStrategy::FullExpansion).decompose(f).unwrap();
    assert!(loose.approximation.zero_to_one >= tight.approximation.zero_to_one);
    assert_eq!(tight.h.off().count_ones(), tight.approximation.zero_to_one);
    assert_eq!(loose.h.off().count_ones(), loose.approximation.zero_to_one);
}

#[test]
fn bdd_and_dense_backends_agree_on_benchmark_outputs() {
    use bdd::BddManager;
    let instance = benchmarks::arithmetic::z4();
    let f = &instance.outputs()[1];
    let g = {
        // Over-approximate by dropping the most-significant input from an SOP.
        let cover = sop::espresso(f);
        let expanded: Vec<_> = cover.iter().map(|c| c.cofactor(0, true).unwrap_or(*c)).collect();
        boolfunc::Cover::from_cubes(7, expanded).to_truth_table() | f.on().clone()
    };
    let dense = bidecomp::quotient_sets(f, &g, BinaryOp::And);
    let mut mgr = BddManager::new(7);
    let f_on = mgr.from_truth_table(f.on());
    let f_dc = mgr.from_truth_table(f.dc());
    let g_bdd = mgr.from_truth_table(&g);
    let (h_on, h_dc) = bidecomp::full_quotient_bdd(&mut mgr, f_on, f_dc, g_bdd, BinaryOp::And);
    assert_eq!(mgr.to_truth_table(h_on).unwrap(), dense.on);
    assert_eq!(mgr.to_truth_table(h_dc).unwrap(), dense.dc);
}
