//! Integration tests pinning the substrates against each other: the espresso
//! minimizer, the BDD ISOP extraction, the 2-SPP synthesizer and the area
//! model must all agree on what function they are realizing.

use bidecomposition::prelude::*;
use boolfunc::TruthTable;

fn pseudo_random_isf(num_vars: usize, seed: u64) -> Isf {
    let on = TruthTable::from_fn(num_vars, |m| {
        m.wrapping_mul(0x9E37_79B9).wrapping_add(seed.wrapping_mul(0x85EB_CA6B)) % 7 < 3
    });
    let dc =
        TruthTable::from_fn(num_vars, |m| m.wrapping_mul(0xC2B2_AE35).wrapping_add(seed) % 11 == 0)
            .difference(&on);
    Isf::new(on, dc).expect("disjoint by construction")
}

#[test]
fn espresso_bdd_isop_and_spp_realize_the_same_function() {
    for seed in 0..10u64 {
        let f = pseudo_random_isf(6, seed);

        // espresso cover.
        let sop = sop::espresso(&f);
        assert!(sop::espresso::verify_cover(&f, &sop), "seed {seed}: espresso cover invalid");

        // BDD ISOP inside the same interval.
        let mut mgr = BddManager::new(6);
        let lower = mgr.from_truth_table(f.on());
        let upper = mgr.from_truth_table(&f.max_completion());
        let (isop, _) = mgr.isop(lower, upper);
        let isop_tt = isop.to_truth_table();
        assert!(f.on().is_subset_of(&isop_tt), "seed {seed}: ISOP misses on-set");
        assert!(isop_tt.is_subset_of(&f.max_completion()), "seed {seed}: ISOP hits off-set");

        // 2-SPP form.
        let form = SppSynthesizer::new().synthesize(&f);
        assert!(form.matches(&f), "seed {seed}: 2-SPP form invalid");
        assert!(
            form.literal_count() <= sop.literal_count(),
            "seed {seed}: 2-SPP must never be worse than its SOP seed"
        );

        // The area model maps both; the cheaper literal count cannot cost more
        // than twice the other realization (sanity band, not a tight bound).
        let model = AreaModel::mcnc();
        let area_sop = model.cover_area(&sop);
        let area_spp = model.spp_area(&form);
        assert!(area_sop > 0.0 || sop.is_empty());
        assert!(area_spp.is_finite());
    }
}

#[test]
fn exact_minimizer_is_a_lower_bound_for_the_heuristic() {
    for seed in 0..10u64 {
        let f = pseudo_random_isf(4, seed);
        let exact = sop::exact_minimize(&f);
        let heuristic = sop::espresso(&f);
        assert!(
            exact.num_cubes() <= heuristic.num_cubes(),
            "seed {seed}: exact found more cubes than the heuristic"
        );
    }
}

#[test]
fn benchmark_instances_survive_pla_serialization() {
    let inst = benchmarks::arithmetic::adder("adr3", 3);
    let pla = inst.to_pla();
    assert_eq!(pla.num_inputs(), 6);
    assert_eq!(pla.num_outputs(), 4);
    let text = pla.to_string();
    let parsed: boolfunc::Pla = text.parse().expect("round trip");
    for (i, isf) in parsed.output_isfs().expect("dense").iter().enumerate() {
        assert_eq!(isf.on(), inst.outputs()[i].on(), "output {i} changed in the round trip");
    }
}

#[test]
fn facade_prelude_exposes_the_whole_flow() {
    // Compile-time check that the prelude is sufficient for the quickstart.
    let f = Isf::from_cover_str(3, &["11-"], &[]).expect("valid cover");
    let g = Cover::from_strs(3, &["1--"]).expect("valid cover").to_truth_table();
    let h = full_quotient(&f, &g, BinaryOp::And).expect("valid divisor");
    assert!(verify_decomposition(&f, &g, &h, BinaryOp::And));
    let _ = SppSynthesizer::new().synthesize(&h);
    let _ = AreaModel::mcnc();
    let _ = GateLibrary::mcnc();
    let _ = Suite::smoke();
    let mut mgr = BddManager::new(3);
    let _ = mgr.variable(1);
}
